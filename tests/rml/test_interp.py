"""The concrete RML interpreter: operational semantics on finite states."""

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    App,
    Elem,
    FuncDecl,
    RelDecl,
    Sort,
    Var,
    eq,
    make_structure,
    not_,
    parse_formula,
    vocabulary,
)
from repro.rml.ast import (
    Abort,
    Assume,
    Choice,
    Havoc,
    Seq,
    Skip,
    UpdateFunc,
    UpdateRel,
    seq,
)
from repro.rml.interp import execute

elem = Sort("elem")
p = RelDecl("p", (elem,))
r = RelDecl("r", (elem, elem))
c = FuncDecl("c", (), elem)
VOCAB = vocabulary(sorts=[elem], relations=[p, r], functions=[c])
X, Y = Var("X", elem), Var("Y", elem)

e0, e1 = Elem("e0", elem), Elem("e1", elem)


def fml(source, free=None):
    return parse_formula(source, VOCAB, free=free)


@pytest.fixture()
def state():
    return make_structure(
        VOCAB,
        universe={elem: [e0, e1]},
        rels={"p": [(e0,)], "r": [(e0, e1)]},
        funcs={"c": {(): e0}},
    )


class TestBasicCommands:
    def test_skip(self, state):
        outcomes = execute(Skip(), state)
        assert len(outcomes) == 1 and outcomes[0].state is state

    def test_abort(self, state):
        outcomes = execute(Abort(), state)
        assert len(outcomes) == 1 and outcomes[0].aborted

    def test_assume_filters(self, state):
        assert execute(Assume(fml("p(c)")), state)
        assert not execute(Assume(fml("~p(c)")), state)

    def test_update_rel_pointwise(self, state):
        # p(x) := ~p(x)
        flip = UpdateRel(p, (X,), not_(fml("p(X)", free={"X": elem})))
        (outcome,) = execute(flip, state)
        assert not outcome.state.rel_holds(p, (e0,))
        assert outcome.state.rel_holds(p, (e1,))

    def test_update_rel_reads_old_values(self, state):
        # r(x, y) := r(y, x) (transpose, simultaneous)
        transpose = UpdateRel(r, (X, Y), fml("r(Y, X)", free={"X": elem, "Y": elem}))
        (outcome,) = execute(transpose, state)
        assert outcome.state.rel_holds(r, (e1, e0))
        assert not outcome.state.rel_holds(r, (e0, e1))

    def test_update_func(self, state):
        update = UpdateFunc(c, (), App(c, ()))
        (outcome,) = execute(update, state)
        assert outcome.state.func_value(c) == e0

    def test_havoc_branches_over_domain(self, state):
        outcomes = execute(Havoc(c), state)
        values = {o.state.func_value(c) for o in outcomes}
        assert values == {e0, e1}

    def test_seq_threads_state(self, state):
        program = seq(
            UpdateRel(p, (X,), TRUE),
            Assume(fml("forall X. p(X)")),
        )
        outcomes = execute(program, state)
        assert len(outcomes) == 1

    def test_seq_abort_short_circuits(self, state):
        program = Seq((Abort(), Assume(FALSE)))
        outcomes = execute(program, state)
        assert outcomes[0].aborted

    def test_choice_collects_labels(self, state):
        program = Choice((Skip(), Abort()), ("left", "right"))
        outcomes = execute(program, state)
        labels = {o.labels[0] for o in outcomes}
        assert labels == {"left", "right"}

    def test_dedupe(self, state):
        program = Choice((Skip(), Skip()))  # identical outcomes, same labels?
        outcomes = execute(program, state)
        # labels differ (branch0/branch1) so both kept; states equal
        assert len(outcomes) == 2


class TestAxiomPruning:
    def test_mutation_violating_axiom_blocked(self, state):
        axiom = fml("exists X. p(X)")  # someone always satisfies p
        wipe = UpdateRel(p, (X,), FALSE)
        assert execute(wipe, state, axiom) == []

    def test_mutation_preserving_axiom_allowed(self, state):
        axiom = fml("exists X. p(X)")
        fill = UpdateRel(p, (X,), TRUE)
        assert len(execute(fill, state, axiom)) == 1

    def test_intermediate_violation_blocks_path(self, state):
        """wp guards apply at every mutation, not only at the end."""
        axiom = fml("exists X. p(X)")
        program = seq(
            UpdateRel(p, (X,), FALSE),  # leaves the axiom space...
            UpdateRel(p, (X,), TRUE),  # ...and this must not repair it
        )
        assert execute(program, state, axiom) == []

    def test_havoc_respects_axioms(self, state):
        axiom = fml("p(c)")  # c must satisfy p; only e0 qualifies
        outcomes = execute(Havoc(c), state, axiom)
        assert {o.state.func_value(c) for o in outcomes} == {e0}


class TestLeaderElectionSuccessors:
    def test_successors_of_fig7_cti(self, leader_bundle):
        """From the Figure 7 (a1)-like CTI, a receive produces two leaders."""
        from repro.core.induction import check_inductive
        from repro.rml.interp import successors

        bundle = leader_bundle
        result = check_inductive(bundle.program, list(bundle.safety))
        assert not result.holds
        cti = result.cti
        outcomes = successors(bundle.program, cti.state)
        assert outcomes, "the CTI must have successors"
        leader = bundle.program.vocab.relation("leader")
        violating = [
            o
            for o in outcomes
            if o.state is not None and o.state.positive_count(leader) >= 2
        ]
        assert violating, "some successor must have two leaders"
        assert any("receive" in o.labels for o in violating)
