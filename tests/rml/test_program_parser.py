"""The RML concrete-syntax parser: a text model must behave identically to
the programmatically built one."""

import pytest

from repro.core.bounded import find_error_trace
from repro.core.induction import Conjecture, check_inductive
from repro.logic.lexer import ParseError
from repro.logic import parse_formula
from repro.rml.parser import parse_program

LEADER_SOURCE = """
program leader_election_text

sort node
sort id

relation le : id, id
relation btw : node, node, node
relation leader : node
relation pnd : id, node

function idn : node -> id

variable n : node
variable m : node
variable i : id

axiom unique_ids: forall N1, N2. N1 ~= N2 -> idn(N1) ~= idn(N2)
axiom le_total_order:
    (forall X:id. le(X, X))
    & (forall X, Y, Z:id. le(X, Y) & le(Y, Z) -> le(X, Z))
    & (forall X, Y:id. le(X, Y) & le(Y, X) -> X = Y)
    & (forall X, Y:id. le(X, Y) | le(Y, X))
axiom ring_topology:
    (forall X, Y, Z. btw(X, Y, Z) -> btw(Y, Z, X))
    & (forall W, X, Y, Z. btw(W, X, Y) & btw(W, Y, Z) -> btw(W, X, Z))
    & (forall W, X, Y. btw(W, X, Y) -> ~btw(W, Y, X))
    & (forall W:node, X:node, Y:node.
       W ~= X & X ~= Y & W ~= Y -> btw(W, X, Y) | btw(W, Y, X))

init {
    assume forall X:node. ~leader(X);
    assume forall X:id, Y:node. ~pnd(X, Y);
}

safety single_leader: forall N1, N2. leader(N1) & leader(N2) -> N1 = N2

action send {
    havoc n;
    havoc m;
    assume forall X. X ~= n & X ~= m -> btw(n, m, X);
    insert pnd(idn(n), m);
}

action receive {
    havoc n;
    havoc m;
    havoc i;
    assume pnd(i, n);
    assume forall X. X ~= n & X ~= m -> btw(n, m, X);
    if i = idn(n) {
        insert leader(n);
    } else {
        if le(idn(n), i) {
            insert pnd(i, m);
        };
    };
}
"""


@pytest.fixture(scope="module")
def text_program():
    return parse_program(LEADER_SOURCE)


class TestParsing:
    def test_declarations(self, text_program):
        vocab = text_program.vocab
        assert {s.name for s in vocab.sorts} == {"node", "id"}
        assert vocab.relation("btw").arity == 3
        assert vocab.function("idn").sort.name == "id"
        assert vocab.function("n").is_constant
        assert len(text_program.axioms) == 3

    def test_body_structure(self, text_program):
        from repro.rml.ast import Choice, Seq, subcommands

        kinds = [type(c).__name__ for c in subcommands(text_program.body)]
        assert "Choice" in kinds  # safety assert + the action choice
        choices = [
            c
            for c in subcommands(text_program.body)
            if isinstance(c, Choice) and c.labels == ("send", "receive")
        ]
        assert len(choices) == 1

    def test_program_name(self, text_program):
        assert text_program.name == "leader_election_text"


class TestSemanticEquivalence:
    """The text model verifies exactly like the programmatic Figure 1 model."""

    @pytest.mark.slow
    def test_invariant_inductive(self, text_program):
        vocab = text_program.vocab
        conjectures = [
            Conjecture(
                "C0",
                parse_formula(
                    "forall N1, N2. ~(leader(N1) & leader(N2) & N1 ~= N2)", vocab
                ),
            ),
            Conjecture(
                "C1",
                parse_formula(
                    "forall N1, N2."
                    " ~(N1 ~= N2 & leader(N1) & le(idn(N1), idn(N2)))",
                    vocab,
                ),
            ),
            Conjecture(
                "C2",
                parse_formula(
                    "forall N1, N2."
                    " ~(N1 ~= N2 & pnd(idn(N1), N1) & le(idn(N1), idn(N2)))",
                    vocab,
                ),
            ),
            Conjecture(
                "C3",
                parse_formula(
                    "forall N1, N2, N3."
                    " ~(btw(N1, N2, N3) & pnd(idn(N2), N1)"
                    "   & le(idn(N2), idn(N3)))",
                    vocab,
                ),
            ),
        ]
        result = check_inductive(text_program, conjectures)
        assert result.holds

    @pytest.mark.slow
    def test_bug_reappears_without_axiom(self, text_program):
        buggy = text_program.without_axiom("unique_ids")
        result = find_error_trace(buggy, 4)
        assert not result.holds and result.depth == 4


class TestParseErrors:
    def test_unknown_sort(self):
        with pytest.raises(ParseError, match="unknown sort"):
            parse_program("sort a\nrelation p : b\n")

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_program(
                "sort a\nvariable v : a\naction act { frobnicate v; }"
            )

    def test_havoc_requires_variable(self):
        with pytest.raises(ParseError, match="not a program variable"):
            parse_program(
                "sort a\nrelation p : a\naction act { havoc p; }"
            )

    def test_update_parameter_shadowing(self):
        with pytest.raises(ParseError, match="shadows"):
            parse_program(
                "sort a\nrelation p : a\nvariable v : a\n"
                "action act { update p(v) := true; }"
            )

    def test_fragment_violation_caught(self):
        from repro.rml.typecheck import ProgramError

        with pytest.raises(ProgramError):
            parse_program(
                "sort a\nrelation r : a, a\n"
                "action act { assume forall X:a. exists Y:a. r(X, Y); }"
            )

    def test_statements_need_semicolons(self):
        with pytest.raises(ParseError):
            parse_program("sort a\nvariable v : a\naction act { havoc v }")


class TestErrorPositions:
    def test_statement_error_cites_line_and_column(self):
        source = "sort a\nvariable v : a\naction act {\n    frobnicate v;\n}"
        with pytest.raises(ParseError) as excinfo:
            parse_program(source)
        error = excinfo.value
        assert "(line 4" in str(error)
        assert error.span is not None
        assert error.span.line == 4

    def test_decl_error_cites_line(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("sort a\nrelation p : b\n")
        assert "(line 2" in str(excinfo.value)

    def test_sugar_error_carries_statement_span(self):
        # An open assert becomes a ParseError with the safety's position.
        source = "sort a\nrelation r : a\nsafety bad: r(X)\n"
        with pytest.raises(ParseError) as excinfo:
            parse_program(source)
        error = excinfo.value
        assert "closed" in str(error)
        assert error.span is not None and error.span.line == 3
