"""The wp operator (Figure 13): rules, Lemma 3.2 closure, and the
wp/interpreter agreement property."""

import itertools
import random

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    App,
    FuncDecl,
    RelDecl,
    Sort,
    Var,
    and_,
    eq,
    forall,
    is_exists_forall,
    is_forall_exists,
    not_,
    parse_formula,
    vocabulary,
)
from repro.logic.structures import all_structures
from repro.rml.ast import (
    Abort,
    Assume,
    Choice,
    Havoc,
    Seq,
    Skip,
    UpdateFunc,
    UpdateRel,
    seq,
)
from repro.rml.interp import execute
from repro.rml.wp import wp

elem = Sort("elem")
p = RelDecl("p", (elem,))
r = RelDecl("r", (elem, elem))
c = FuncDecl("c", (), elem)
VOCAB = vocabulary(sorts=[elem], relations=[p, r], functions=[c])
X, Y = Var("X", elem), Var("Y", elem)


def fml(source, free=None):
    return parse_formula(source, VOCAB, free=free)


class TestRules:
    def test_skip(self):
        post = fml("p(c)")
        assert wp(Skip(), post) == post

    def test_abort(self):
        assert wp(Abort(), fml("p(c)")) == FALSE

    def test_assume(self):
        post = fml("p(c)")
        pre = wp(Assume(fml("forall X. r(X, X)")), post)
        assert pre == parse_formula("(forall X. r(X, X)) -> p(c)", VOCAB)

    def test_update_rel_substitutes(self):
        # p(x) := r(x, c); then wp(_, p(c)) = r(c, c)
        update = UpdateRel(p, (X,), fml("r(X, c)", free={"X": elem}))
        assert wp(update, fml("p(c)")) == fml("r(c, c)")

    def test_update_rel_old_value_not_rewritten(self):
        # p(x) := ~p(x) flips p; wp(_, p(c)) = ~p(c)
        update = UpdateRel(p, (X,), not_(fml("p(X)", free={"X": elem})))
        assert wp(update, fml("p(c)")) == not_(fml("p(c)"))

    def test_update_func(self):
        update = UpdateFunc(c, (), App(c, ()))  # c := c (no-op)
        post = fml("p(c)")
        assert wp(update, post) == post

    def test_havoc_quantifies(self):
        pre = wp(Havoc(c), fml("p(c)"))
        # forall v. p(v)
        assert is_forall_exists(pre)
        for structure in all_structures(VOCAB, {elem: 2}):
            expected = all(
                structure.rel_holds(p, (e,)) for e in structure.universe[elem]
            )
            assert structure.satisfies(pre) == expected

    def test_seq_composes(self):
        update = UpdateRel(p, (X,), fml("r(X, c)", free={"X": elem}))
        two = Seq((update, Assume(fml("p(c)"))))
        assert wp(two, fml("p(c)")) == wp(update, wp(Assume(fml("p(c)")), fml("p(c)")))

    def test_choice_conjoins(self):
        left = Assume(fml("p(c)"))
        right = Assume(fml("~p(c)"))
        pre = wp(Choice((left, right)), FALSE)
        assert pre == and_(fml("~p(c)"), fml("p(c)")) or set(pre.args) == {
            not_(fml("p(c)")),
            fml("p(c)"),
        }


class TestAxiomGuards:
    AXIOM = None

    def _axiom(self):
        return fml("forall X. r(X, X)")  # reflexivity of r

    def test_guard_appears_when_axiom_touched(self):
        update = UpdateRel(r, (X, Y), FALSE)  # wipe r -> breaks reflexivity
        pre = wp(update, FALSE, self._axiom())
        # wp = (A -> false)[false/r] = ~A[false/r] = ~(forall X. false) = true
        for structure in all_structures(VOCAB, {elem: 2}, max_count=16):
            assert structure.satisfies(pre)

    def test_reduced_equals_full_guard_under_axioms(self):
        """reduce_guards=True agrees with the literal Figure 13 operator on
        every axiom-satisfying state."""
        axiom = self._axiom()
        post = fml("forall X. p(X) -> r(X, X)")
        commands = [
            UpdateRel(p, (X,), fml("r(X, c)", free={"X": elem})),
            UpdateRel(r, (X, Y), fml("r(Y, X)", free={"X": elem, "Y": elem})),
            Havoc(c),
            Seq((Havoc(c), UpdateRel(p, (X,), eq(X, App(c, ()))))),
        ]
        for command in commands:
            reduced = wp(command, post, axiom, reduce_guards=True)
            full = wp(command, post, axiom, reduce_guards=False)
            for structure in all_structures(VOCAB, {elem: 2}):
                if not structure.satisfies(axiom):
                    continue
                assert structure.satisfies(reduced) == structure.satisfies(full)


class TestLemma32Closure:
    """Lemma 3.2: forall*exists* formulas are closed under wp."""

    POSTS = [
        "forall X. p(X)",
        "forall X. exists Y. r(X, Y)",
        "p(c)",
        "forall X, Y. r(X, Y) -> exists Z. r(Y, Z)",
    ]

    COMMANDS = [
        Skip(),
        Abort(),
        UpdateRel(p, (X,), parse_formula("r(X, c)", VOCAB, free={"X": elem})),
        Havoc(c),
        Assume(parse_formula("exists X. forall Y. r(X, Y)", VOCAB)),
        Seq(
            (
                Havoc(c),
                Assume(parse_formula("p(c)", VOCAB)),
                UpdateRel(p, (X,), parse_formula("X = c", VOCAB, free={"X": elem})),
            )
        ),
        Choice(
            (
                UpdateRel(p, (X,), TRUE),
                UpdateRel(p, (X,), FALSE),
            )
        ),
    ]

    @pytest.mark.parametrize("post_source", POSTS)
    @pytest.mark.parametrize("command", COMMANDS, ids=lambda c: type(c).__name__)
    def test_wp_stays_ae(self, post_source, command):
        post = fml(post_source)
        axiom = fml("forall X. r(X, X)")
        pre = wp(command, post, axiom)
        assert is_forall_exists(pre)
        assert is_exists_forall(not_(pre))


def random_command(rng, depth=2):
    """A random well-formed command over VOCAB."""
    options = ["skip", "update_p", "update_r", "update_c", "havoc", "assume"]
    if depth > 0:
        options += ["seq", "choice"]
    kind = rng.choice(options)
    if kind == "skip":
        return Skip()
    if kind == "update_p":
        body = rng.choice(
            [
                fml("r(X, c)", free={"X": elem}),
                not_(fml("p(X)", free={"X": elem})),
                eq(X, App(c, ())),
                TRUE,
                FALSE,
            ]
        )
        return UpdateRel(p, (X,), body)
    if kind == "update_r":
        body = rng.choice(
            [
                fml("r(Y, X)", free={"X": elem, "Y": elem}),
                and_(fml("p(X)", free={"X": elem}), fml("p(Y)", free={"Y": elem})),
                eq(X, Y),
            ]
        )
        return UpdateRel(r, (X, Y), body)
    if kind == "update_c":
        return UpdateFunc(c, (), App(c, ()))
    if kind == "havoc":
        return Havoc(c)
    if kind == "assume":
        return Assume(rng.choice([fml("p(c)"), fml("exists X. ~p(X)"), fml("forall X. r(X,X) -> p(X)")]))
    if kind == "seq":
        return seq(random_command(rng, depth - 1), random_command(rng, depth - 1))
    return Choice((random_command(rng, depth - 1), random_command(rng, depth - 1)))


class TestWpAgainstInterpreter:
    """The fundamental soundness property: s |= wp(C, Q) iff every outcome
    of C from s satisfies Q (aborts falsify wp)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_differential(self, seed):
        rng = random.Random(seed)
        posts = [fml("p(c)"), fml("forall X. p(X)"), fml("exists X. r(X, c)")]
        axiom = TRUE
        structures = list(all_structures(VOCAB, {elem: 2}, max_count=24))
        for _ in range(12):
            command = random_command(rng)
            post = rng.choice(posts)
            pre = wp(command, post, axiom)
            for state in structures:
                outcomes = execute(command, state, axiom)
                all_ok = all(
                    (not o.aborted) and o.state.satisfies(post) for o in outcomes
                )
                assert state.satisfies(pre) == all_ok, (command, post, state)

    def test_differential_with_axiom(self):
        rng = random.Random(42)
        axiom = fml("forall X. r(X, X)")
        post = fml("forall X. p(X) -> r(X, c)")
        structures = [
            s for s in all_structures(VOCAB, {elem: 2}, max_count=600)
            if s.satisfies(axiom)
        ]
        assert structures, "need axiom-satisfying states"
        for _ in range(10):
            command = random_command(rng)
            pre = wp(command, post, axiom)
            for state in structures[:20]:
                outcomes = execute(command, state, axiom)
                all_ok = all(
                    (not o.aborted) and o.state.satisfies(post) for o in outcomes
                )
                assert state.satisfies(pre) == all_ok, (command,)
