"""Invariant shrinking: minimal inductive cores."""

import pytest

from repro.core.induction import Conjecture, check_inductive
from repro.core.shrink import shrink_invariant
from repro.logic import parse_formula


class TestShrink:
    @pytest.mark.slow
    def test_chord_core_is_smaller(self):
        from repro.protocols import chord

        bundle = chord.build()
        result = shrink_invariant(
            bundle.program, bundle.invariant, safety=bundle.safety
        )
        assert len(result.core) < len(bundle.invariant)
        assert check_inductive(bundle.program, list(result.core)).holds
        # Safety is preserved in the core.
        names = {c.name for c in result.core}
        assert "C0" in names

    def test_lock_server_core_is_everything(self):
        """The lock server's exclusion lattice has no redundancy."""
        from repro.protocols import lock_server

        bundle = lock_server.build()
        result = shrink_invariant(
            bundle.program, bundle.invariant, safety=bundle.safety
        )
        assert result.dropped == ()
        assert len(result.core) == len(bundle.invariant)

    @pytest.mark.slow
    def test_redundant_conjecture_dropped(self, leader_bundle):
        vocab = leader_bundle.program.vocab
        redundant = Conjecture(
            "weak", parse_formula(
                "forall N1, N2, N3. ~(leader(N1) & leader(N2) & leader(N3)"
                " & N1 ~= N2 & N2 ~= N3 & N1 ~= N3)", vocab
            )
        )
        result = shrink_invariant(
            leader_bundle.program,
            (*leader_bundle.invariant, redundant),
            safety=leader_bundle.safety,
        )
        assert "weak" in result.dropped

    def test_non_inductive_input_rejected(self, leader_bundle):
        with pytest.raises(AssertionError):
            shrink_invariant(
                leader_bundle.program,
                leader_bundle.safety,
                safety=leader_bundle.safety,
            )
