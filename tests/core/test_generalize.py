"""Interactive generalization: reachability tests, unsat-core shrinking,
and the Section 2.3 walkthrough ingredients."""

import pytest

from repro.core.bounded import make_unroller
from repro.core.generalize import auto_generalize, check_unreachable
from repro.core.induction import check_inductive
from repro.core.minimize import PositiveTuples, SortSize, find_minimal_cti
from repro.core.policy import violation_subconfiguration
from repro.logic import Sort, and_, not_, parse_formula
from repro.logic.partial import from_structure
from repro.solver import EprSolver


@pytest.fixture(scope="module")
def leader_cti(leader_bundle):
    """The minimal first CTI of the leader election session."""
    program = leader_bundle.program
    measures = [
        SortSize(Sort("node")),
        SortSize(Sort("id")),
        PositiveTuples(program.vocab.relation("pnd")),
        PositiveTuples(program.vocab.relation("leader")),
    ]
    result = find_minimal_cti(program, list(leader_bundle.safety), measures)
    assert result.cti is not None
    return result.cti


@pytest.fixture(scope="module")
def unroller(leader_bundle):
    return make_unroller(leader_bundle.program)


def equivalent_under_axioms(program, f, g) -> bool:
    a = EprSolver(program.vocab)
    a.add(and_(program.axiom_formula, f, not_(g)))
    b = EprSolver(program.vocab)
    b.add(and_(program.axiom_formula, g, not_(f)))
    return not a.check().satisfiable and not b.check().satisfiable


class TestCheckUnreachable:
    @pytest.mark.slow
    def test_full_cti_unreachable(self, leader_bundle, leader_cti, unroller):
        """The CTI state itself (as a diagram) is unreachable within 3."""
        partial = from_structure(leader_cti.state)
        scratch = ("n", "m", "i")
        for name in scratch:
            partial = partial.forget(name)
        result = check_unreachable(leader_bundle.program, partial, 2, unroller)
        assert result.unreachable

    @pytest.mark.slow
    def test_overgeneralization_is_reachable(self, leader_bundle, leader_cti, unroller):
        """Forgetting the pnd information of this CTI leaves only 'a leader
        and a non-leader exist', which *is* reachable -- Ivy would show the
        user the witness trace (Section 4.5's failure path)."""
        partial = from_structure(leader_cti.state)
        for name in ("n", "m", "i", "btw", "pnd"):
            partial = partial.forget(name)
        result = check_unreachable(leader_bundle.program, partial, 3, unroller)
        assert not result.unreachable
        assert result.trace is not None
        result.trace.validate()
        assert result.depth == 3  # election needs send + 2 receives

    def test_empty_partial_reachable(self, leader_bundle, unroller):
        """The empty generalization excludes everything; any initial state
        witnesses reachability at depth 0."""
        from repro.logic.partial import PartialStructure

        vocab = leader_bundle.program.vocab
        empty = PartialStructure(vocab, {}, {}, {})
        result = check_unreachable(leader_bundle.program, empty, 1, unroller)
        assert not result.unreachable
        assert result.depth == 0


@pytest.mark.slow
class TestAutoGeneralize:
    def test_produces_paper_conjecture(self, leader_bundle, leader_cti, unroller):
        """Generalizing the violation slice of the first CTI yields a
        conjecture equivalent (under the axioms) to the paper's C1 or C2."""
        program = leader_bundle.program
        violated = [
            target
            for target in leader_bundle.invariant[1:]
            if not leader_cti.state.satisfies(target.formula)
        ]
        assert violated, "the CTI must falsify one of C1..C3"
        target = violated[0]
        upper = violation_subconfiguration(leader_cti.state, target.formula)
        outcome = auto_generalize(program, upper, 3, unroller)
        assert outcome.ok
        assert equivalent_under_axioms(program, outcome.conjecture, target.formula)

    def test_generalization_is_stronger(self, leader_bundle, leader_cti, unroller):
        """phi(s_m) => phi(s_u): dropping literals strengthens (Sec. 4.4)."""
        from repro.logic.partial import conjecture

        program = leader_bundle.program
        target = next(
            t
            for t in leader_bundle.invariant[1:]
            if not leader_cti.state.satisfies(t.formula)
        )
        upper = violation_subconfiguration(leader_cti.state, target.formula)
        outcome = auto_generalize(program, upper, 3, unroller)
        assert outcome.ok
        solver = EprSolver(program.vocab)
        solver.add(
            and_(program.axiom_formula, outcome.conjecture, not_(conjecture(upper)))
        )
        assert not solver.check().satisfiable

    def test_failure_returns_trace(self, leader_bundle, leader_cti, unroller):
        partial = from_structure(leader_cti.state)
        for name in ("n", "m", "i", "btw", "pnd"):
            partial = partial.forget(name)
        outcome = auto_generalize(leader_bundle.program, partial, 3, unroller)
        assert not outcome.ok
        assert outcome.trace is not None

    def test_bound2_admits_bogus_generalization(self, leader_bundle, unroller):
        """The Section 2.3 anecdote: with BMC bound 2, 'two distinct nodes,
        one a leader' is (wrongly) accepted -- a leader needs 3 steps."""
        program = leader_bundle.program
        vocab = program.vocab
        bogus = parse_formula(
            "forall N1, N2. ~(N1 ~= N2 & leader(N1))", vocab
        )
        from repro.core.bounded import check_k_invariance

        assert check_k_invariance(program, bogus, 2, unroller).holds
        assert not check_k_invariance(program, bogus, 3, unroller).holds
