"""Houdini and template enumeration (the Section 5.1 automatic baseline)."""

import pytest

from repro.core.absint import candidate_atoms, candidate_terms, enumerate_candidates
from repro.core.houdini import houdini, proves
from repro.core.induction import Conjecture
from repro.logic import Sort, Var, parse_formula
from repro.protocols import lock_server


@pytest.fixture(scope="module")
def lock_bundle():
    return lock_server.build()


class TestTemplates:
    def test_candidate_terms_include_function_apps(self, ring_vocab):
        node = Sort("node")
        variables = [Var("N1", node), Var("N2", node)]
        terms = candidate_terms(ring_vocab, variables)
        names = {str(t) for t in terms}
        assert {"N1", "N2", "idn(N1)", "idn(N2)"} <= names

    def test_candidate_atoms_cover_relations(self, ring_vocab):
        node = Sort("node")
        variables = [Var("N1", node), Var("N2", node)]
        atoms = candidate_atoms(ring_vocab, variables, include_equality=False)
        rels = {a.rel.name for a in atoms}
        assert {"le", "leader", "pnd", "btw"} <= rels

    def test_enumeration_yields_universal_conjectures(self, lock_bundle):
        client = Sort("client")
        variables = [Var("C1", client), Var("C2", client)]
        pool = list(
            enumerate_candidates(
                lock_bundle.program.vocab, variables, max_literals=2, max_candidates=40
            )
        )
        assert len(pool) == 40
        # Conjecture's constructor enforces universality/closedness.
        assert all(isinstance(c, Conjecture) for c in pool)

    def test_max_candidates_cap(self, lock_bundle):
        client = Sort("client")
        variables = [Var("C1", client)]
        pool = list(
            enumerate_candidates(
                lock_bundle.program.vocab, variables, max_literals=1, max_candidates=5
            )
        )
        assert len(pool) == 5


class TestHoudini:
    def test_known_invariant_survives(self, lock_bundle):
        result = houdini(lock_bundle.program, list(lock_bundle.invariant))
        assert {c.name for c in result.invariant} == {
            c.name for c in lock_bundle.invariant
        }
        assert result.dropped_initiation == ()
        assert result.dropped_consecution == ()

    def test_junk_dropped_at_initiation(self, lock_bundle):
        vocab = lock_bundle.program.vocab
        junk = Conjecture("junk", parse_formula("forall C:client. ~server_free", vocab))
        result = houdini(lock_bundle.program, [*lock_bundle.invariant, junk])
        assert "junk" in result.dropped_initiation

    def test_non_invariant_dropped_at_consecution(self, lock_bundle):
        vocab = lock_bundle.program.vocab
        wrong = Conjecture(
            "no_holder", parse_formula("forall C:client. ~holds(C)", vocab)
        )
        result = houdini(lock_bundle.program, [*lock_bundle.invariant, wrong])
        assert "no_holder" in result.dropped_consecution
        assert {c.name for c in result.invariant} >= {"C0", "C1"}

    def test_cascade(self, lock_bundle):
        """Dropping a supporting conjecture can cascade: alone, C0 falls."""
        result = houdini(lock_bundle.program, list(lock_bundle.safety))
        assert result.invariant == ()

    @pytest.mark.slow
    def test_full_automation_proves_lock_server(self, lock_bundle):
        """Templates + Houdini re-derive the lock server proof end to end
        (the paper's Chord strategy, dogfooded on the lock server)."""
        client = Sort("client")
        variables = [Var("C1", client), Var("C2", client)]
        pool = list(
            enumerate_candidates(
                lock_bundle.program.vocab,
                variables,
                max_literals=3,  # the safety property itself has 3 literals
                include_equality=True,
                max_candidates=4000,
            )
        )
        result = houdini(lock_bundle.program, pool)
        assert result.invariant
        assert proves(lock_bundle.program, result.invariant, lock_bundle.safety[0])

    def test_proves_rejects_unimplied_goal(self, lock_bundle):
        vocab = lock_bundle.program.vocab
        goal = Conjecture("strong", parse_formula("forall C:client. ~holds(C)", vocab))
        assert not proves(lock_bundle.program, lock_bundle.invariant, goal)
