"""Minimal CTIs: measures and Algorithm 1."""

import pytest

from repro.core.minimize import (
    NegativeTuples,
    PositiveTuples,
    SortSize,
    default_measures,
    find_minimal_cti,
)
from repro.logic import Sort, parse_formula
from repro.solver import solve_epr


class TestMeasureFormulas:
    def test_sort_size_constraint(self, ring_vocab):
        node = Sort("node")
        measure = SortSize(node)
        two = parse_formula(
            "exists A:node, B:node. A ~= B", ring_vocab
        )
        # "at most 1 node" contradicts two distinct nodes.
        result = solve_epr(ring_vocab, [two, measure.at_most(1)])
        assert not result.satisfiable
        result = solve_epr(ring_vocab, [two, measure.at_most(2)])
        assert result.satisfiable
        assert result.model.sort_size(node) == 2

    def test_sort_size_zero_unsat(self, ring_vocab):
        measure = SortSize(Sort("node"))
        result = solve_epr(ring_vocab, [measure.at_most(0)])
        assert not result.satisfiable  # domains are non-empty

    def test_positive_tuples(self, ring_vocab):
        leader = ring_vocab.relation("leader")
        measure = PositiveTuples(leader)
        two_leaders = parse_formula(
            "exists A:node, B:node. A ~= B & leader(A) & leader(B)", ring_vocab
        )
        assert not solve_epr(ring_vocab, [two_leaders, measure.at_most(1)]).satisfiable
        assert solve_epr(ring_vocab, [two_leaders, measure.at_most(2)]).satisfiable

    def test_positive_tuples_zero(self, ring_vocab):
        leader = ring_vocab.relation("leader")
        some = parse_formula("exists A:node. leader(A)", ring_vocab)
        result = solve_epr(ring_vocab, [some, PositiveTuples(leader).at_most(0)])
        assert not result.satisfiable

    def test_negative_tuples(self, ring_vocab):
        leader = ring_vocab.relation("leader")
        measure = NegativeTuples(leader)
        non_leader = parse_formula("exists A:node. ~leader(A)", ring_vocab)
        result = solve_epr(ring_vocab, [non_leader, measure.at_most(1)])
        assert result.satisfiable
        model = result.model
        assert model.negative_count(leader) <= 1

    def test_binary_relation_bound(self, ring_vocab):
        pnd = ring_vocab.relation("pnd")
        measure = PositiveTuples(pnd)
        two = parse_formula(
            "exists I:id, A:node, B:node. A ~= B & pnd(I, A) & pnd(I, B)",
            ring_vocab,
        )
        assert not solve_epr(ring_vocab, [two, measure.at_most(1)]).satisfiable
        result = solve_epr(ring_vocab, [two, measure.at_most(2)])
        assert result.satisfiable and result.model.positive_count(pnd) == 2


class TestAlgorithm1:
    @pytest.fixture(scope="class")
    def minimal(self, leader_bundle):
        program = leader_bundle.program
        measures = [
            SortSize(Sort("node")),
            SortSize(Sort("id")),
            PositiveTuples(program.vocab.relation("pnd")),
            PositiveTuples(program.vocab.relation("leader")),
        ]
        return find_minimal_cti(program, list(leader_bundle.safety), measures)

    @pytest.mark.slow
    def test_matches_figure7_size(self, leader_bundle, minimal):
        """The minimal CTI for C0 alone is the Figure 7 (a1) shape: two
        nodes, two ids, one pending message, one leader."""
        assert minimal.cti is not None
        state = minimal.cti.state
        assert state.sort_size(Sort("node")) == 2
        assert state.sort_size(Sort("id")) == 2
        vocab = leader_bundle.program.vocab
        assert state.positive_count(vocab.relation("pnd")) == 1
        assert state.positive_count(vocab.relation("leader")) == 1

    @pytest.mark.slow
    def test_reported_bounds(self, minimal):
        assert dict(minimal.bounds) == {
            "|node|": 2,
            "|id|": 2,
            "#pnd": 1,
            "#leader": 1,
        }

    @pytest.mark.slow
    def test_minimal_cti_still_a_cti(self, leader_bundle, minimal):
        cti = minimal.cti
        assert cti.state.satisfies(leader_bundle.safety[0].formula)
        assert cti.successor is not None
        assert not cti.successor.satisfies(leader_bundle.safety[0].formula)

    @pytest.mark.slow
    def test_inductive_set_returns_none(self, leader_bundle):
        result = find_minimal_cti(
            leader_bundle.program, list(leader_bundle.invariant), ()
        )
        assert result.cti is None

    def test_default_measures_cover_sorts_and_mutables(self, leader_bundle):
        measures = default_measures(leader_bundle.program)
        described = {m.describe() for m in measures}
        assert "|node|" in described and "|id|" in described
        assert "#pnd" in described and "#leader" in described
        assert "#btw" not in described  # rigid relations are not minimized
