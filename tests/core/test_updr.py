"""The UPDR baseline: sound verdicts on safe, unsafe, and tiny systems."""

import pytest

from repro.core.houdini import proves
from repro.core.induction import check_inductive
from repro.core.updr import UpdrStatus, updr
from repro.logic import (
    FALSE,
    TRUE,
    FuncDecl,
    RelDecl,
    Sort,
    Var,
    parse_formula,
    vocabulary,
)
from repro.rml.ast import Assume, Havoc, Program, UpdateRel, choice, seq
from repro.rml.sugar import assert_, insert

elem = Sort("elem")


def _monotone_program():
    """p only ever grows and q stays within p: safety q(x) -> p(x)."""
    p = RelDecl("p", (elem,))
    q = RelDecl("q", (elem,))
    c = FuncDecl("c", (), elem)
    vocab = vocabulary(sorts=[elem], relations=[p, q], functions=[c])
    fml = lambda src, **kw: parse_formula(src, vocab, **kw)
    init = seq(
        Assume(fml("forall X. ~p(X)")),
        Assume(fml("forall X. ~q(X)")),
    )
    from repro.logic.parser import parse_term

    add_p = seq(Havoc(c), insert(p, parse_term("c", vocab)))
    add_q = seq(
        Havoc(c),
        Assume(fml("p(c)")),
        insert(q, parse_term("c", vocab)),
    )
    body = seq(
        assert_(fml("forall X. q(X) -> p(X)")),
        choice(add_p, add_q, labels=("add_p", "add_q")),
    )
    return Program(name="monotone", vocab=vocab, axioms=(), init=init, body=body)


def _broken_program():
    """q can be set anywhere: the same safety property is violated."""
    good = _monotone_program()
    vocab = good.vocab
    from repro.logic.parser import parse_term

    c = vocab.function("c")
    q = vocab.relation("q")
    fml = lambda src: parse_formula(src, vocab)
    add_p = seq(Havoc(c), insert(vocab.relation("p"), parse_term("c", vocab)))
    add_q = seq(Havoc(c), insert(q, parse_term("c", vocab)))  # guard dropped
    body = seq(
        assert_(fml("forall X. q(X) -> p(X)")),
        choice(add_p, add_q, labels=("add_p", "add_q")),
    )
    return Program(
        name="monotone_broken", vocab=vocab, axioms=(), init=good.init, body=body
    )


class TestUpdr:
    def test_safe_system_proved(self):
        program = _monotone_program()
        result = updr(program, max_frames=8, max_obligations=200)
        assert result.status == UpdrStatus.SAFE
        assert result.invariant
        assert check_inductive(program, list(result.invariant)).holds

    def test_unsafe_system_refuted_with_trace(self):
        program = _broken_program()
        result = updr(program, max_frames=8, max_obligations=200)
        assert result.status == UpdrStatus.UNSAFE
        assert result.trace is not None
        result.trace.validate()

    @pytest.mark.slow
    def test_lock_server(self, request):
        """The paper found UPDR fragile on its examples; whatever verdict
        our implementation reaches must at least be *sound*."""
        from repro.protocols import lock_server

        bundle = lock_server.build()
        result = updr(bundle.program, max_frames=5, max_obligations=60)
        assert result.status in (
            UpdrStatus.SAFE,
            UpdrStatus.UNKNOWN,
            UpdrStatus.DIVERGED,
        )  # never UNSAFE: the protocol is safe
        if result.status == UpdrStatus.SAFE:
            assert check_inductive(bundle.program, list(result.invariant)).holds
            assert proves(bundle.program, result.invariant, bundle.safety[0])
