"""The terminal-interactive driver, exercised with scripted input."""

import io

import pytest

from repro.core.interactive import TerminalPolicy, run_interactive
from repro.core.session import Session


def scripted(lines):
    return io.StringIO("".join(line + "\n" for line in lines))


class TestTerminalSession:
    def test_lock_server_by_typing_conjectures(self, capsys):
        """A user typing the exclusion lattice at each CTI reaches a proof."""
        from repro.protocols import lock_server

        bundle = lock_server.build()
        answers = [
            f"add {conjecture.formula}" for conjecture in bundle.invariant[1:]
        ]
        session = Session(bundle.program, initial=bundle.safety)
        output = io.StringIO()
        outcome = run_interactive(
            session, input_stream=scripted(answers), output=output
        )
        assert outcome.success
        text = output.getvalue()
        assert "CTI" in text
        assert "inductive invariant found" in text

    def test_quit(self):
        from repro.protocols import lock_server

        bundle = lock_server.build()
        session = Session(bundle.program, initial=bundle.safety)
        output = io.StringIO()
        outcome = run_interactive(
            session, input_stream=scripted(["quit"]), output=output
        )
        assert not outcome.success
        assert "user quit" in output.getvalue()

    def test_eof_is_quit(self):
        from repro.protocols import lock_server

        bundle = lock_server.build()
        session = Session(bundle.program, initial=bundle.safety)
        output = io.StringIO()
        outcome = run_interactive(session, input_stream=io.StringIO(""), output=output)
        assert not outcome.success

    def test_bad_formula_reports_and_continues(self):
        from repro.protocols import lock_server

        bundle = lock_server.build()
        session = Session(bundle.program, initial=bundle.safety)
        output = io.StringIO()
        outcome = run_interactive(
            session,
            input_stream=scripted(["add not a formula ((", "quit"]),
            output=output,
        )
        assert not outcome.success
        assert "error:" in output.getvalue()

    def test_show_and_conjectures_commands(self):
        from repro.protocols import lock_server

        bundle = lock_server.build()
        session = Session(bundle.program, initial=bundle.safety)
        output = io.StringIO()
        run_interactive(
            session,
            input_stream=scripted(["show", "conjectures", "dot", "quit"]),
            output=output,
        )
        text = output.getvalue()
        assert "C0:" in text
        assert "digraph" in text

    @pytest.mark.slow
    def test_generalize_flow_on_leader(self, leader_bundle):
        """Scripted generalization: keep everything but topology/pnd facts
        fails (reachable); keeping the violation slice, the machine suggests
        a conjecture the user accepts."""
        from repro.core.minimize import PositiveTuples, SortSize
        from repro.logic import Sort

        program = leader_bundle.program
        measures = [
            SortSize(Sort("node")),
            SortSize(Sort("id")),
            PositiveTuples(program.vocab.relation("pnd")),
            PositiveTuples(program.vocab.relation("leader")),
        ]
        session = Session(
            program, initial=leader_bundle.safety, bmc_bound=3, measures=measures
        )
        answers = [
            # First attempt: forget everything that matters -> reachable.
            "generalize",
            "",  # keep all elements
            "btw, pnd, le, idn, leader",
            "2",
            # Second attempt: forget only topology; accept the suggestion.
            "generalize",
            "",
            "btw",
            "3",
            "y",
            # Then bail out (a full proof is the walkthrough test's job).
            "quit",
        ]
        output = io.StringIO()
        outcome = run_interactive(
            session, input_stream=scripted(answers), output=output
        )
        text = output.getvalue()
        assert "reachable in" in text  # the rejected over-generalization
        assert "suggested conjecture" in text
        assert len(session.conjectures) == 2  # C0 plus the accepted one
