"""Bounded verification (Eq. 3): k-invariance, error traces, Figure 4."""

import pytest

from repro.core.bounded import check_k_invariance, find_error_trace, make_unroller
from repro.logic import parse_formula


class TestKInvariance:
    def test_trivial_property_holds(self, leader_bundle):
        vocab = leader_bundle.program.vocab
        phi = parse_formula("forall N1:node, N2:node. N1 = N1", vocab)
        result = check_k_invariance(leader_bundle.program, phi, 1)
        assert result.holds

    @pytest.mark.slow
    def test_initially_true_later_false(self, leader_bundle):
        """'no leader' holds initially but fails once elections can finish."""
        vocab = leader_bundle.program.vocab
        no_leader = parse_formula("forall N:node. ~leader(N)", vocab)
        assert check_k_invariance(leader_bundle.program, no_leader, 1).holds
        deeper = check_k_invariance(leader_bundle.program, no_leader, 3)
        assert not deeper.holds
        # A singleton ring elects itself in two steps: send own id to
        # oneself, then receive it back.
        assert deeper.depth == 2
        trace = deeper.trace
        assert trace is not None and trace.length == 2
        trace.validate()
        assert not trace.states[-1].satisfies(no_leader)

    @pytest.mark.slow
    def test_safety_is_k_invariant_for_correct_model(self, leader_bundle):
        result = check_k_invariance(
            leader_bundle.program, leader_bundle.safety[0].formula, 2
        )
        assert result.holds

    def test_rejects_ea_properties(self, leader_bundle):
        vocab = leader_bundle.program.vocab
        phi = parse_formula("exists N:node. forall M:node. N = M", vocab)
        with pytest.raises(ValueError):
            check_k_invariance(leader_bundle.program, phi, 1)

    @pytest.mark.slow
    def test_invariant_conjectures_are_k_invariant(self, leader_bundle):
        unroller = make_unroller(leader_bundle.program)
        for conjecture in leader_bundle.invariant:
            result = check_k_invariance(
                leader_bundle.program, conjecture.formula, 2, unroller
            )
            assert result.holds, conjecture.name


@pytest.fixture(scope="module")
def figure4(leader_bundle):
    """The (expensive) depth-4 search on the unique_ids-free model."""
    buggy = leader_bundle.program.without_axiom("unique_ids")
    return buggy, find_error_trace(buggy, 4)


@pytest.mark.slow
class TestErrorTraces:
    def test_correct_model_safe(self, leader_bundle):
        result = find_error_trace(leader_bundle.program, 2)
        assert result.holds

    def test_bug_invisible_at_depth_3(self, leader_bundle):
        buggy = leader_bundle.program.without_axiom("unique_ids")
        assert find_error_trace(buggy, 3).holds

    def test_figure4_bug(self, leader_bundle, figure4):
        """Omitting unique_ids admits the Figure 4 two-leader trace at
        depth 4."""
        buggy, result = figure4
        assert not result.holds
        assert result.depth == 4
        trace = result.trace
        assert trace is not None and trace.aborted
        trace.validate()
        # The final state indeed has two leaders.
        leader = buggy.vocab.relation("leader")
        assert trace.states[-1].positive_count(leader) >= 2
        # ... reached through duplicate ids.
        unique_ids = leader_bundle.program.axiom_named("unique_ids")
        assert not trace.states[-1].satisfies(unique_ids.formula)

    def test_trace_labels_name_actions(self, figure4):
        _, result = figure4
        labels = " ".join(result.trace.labels)
        assert "send" in labels and "receive" in labels

    def test_unbounded_state_size(self, figure4):
        """BMC bounds iterations, not configuration size: traces may use
        more nodes than steps (Section 2.2's contrast with Alloy)."""
        buggy, result = figure4
        node = buggy.vocab.sorts[0]
        assert result.trace.states[0].sort_size(node) >= 2
