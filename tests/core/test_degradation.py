"""Graceful degradation: every engine survives budget exhaustion.

An exhausted budget must never crash an engine or flip a verdict -- it can
only widen the answer to UNKNOWN (BMC, induction), drop candidates
conservatively (Houdini), or trigger a restart with a larger budget
(UPDR).  ``Budget(wall_seconds=-1.0)`` is a deterministic way to starve
every query: the deadline is already in the past when the meter starts.
"""

import pytest

from repro.core.bounded import check_k_invariance, find_error_trace
from repro.core.houdini import houdini
from repro.core.induction import check_inductive
from repro.core.updr import UpdrStatus, updr
from repro.solver import Budget, FailureReason, QueryCache, install_cache
from repro.protocols import lock_server
from tests.core.test_updr import _broken_program, _monotone_program

STARVED = Budget(wall_seconds=-1.0)
GENEROUS = Budget(wall_seconds=120.0, conflicts=10_000_000)


@pytest.fixture(scope="module")
def lock_bundle():
    return lock_server.build()


@pytest.fixture(autouse=True)
def fresh_cache():
    old = install_cache(QueryCache())
    yield
    install_cache(old)


class TestBoundedDegradation:
    def test_starved_bmc_reports_unknown_not_violation(self, lock_bundle):
        result = find_error_trace(lock_bundle.program, 2, budget=STARVED)
        assert result.unknown
        assert not result.holds and result.trace is None
        assert result.failures
        assert all(reason is FailureReason.TIMEOUT for _, reason in result.failures)
        assert result.verified_depth == result.failures[0][0] - 1

    def test_starved_k_invariance_unknown(self, lock_bundle):
        safety = lock_bundle.safety[0].formula
        result = check_k_invariance(lock_bundle.program, safety, 1, budget=STARVED)
        assert result.unknown and result.trace is None
        assert result.verified_depth == -1  # not even depth 0 answered

    def test_generous_budget_matches_unbudgeted(self, lock_bundle):
        unbudgeted = find_error_trace(lock_bundle.program, 2)
        budgeted = find_error_trace(lock_bundle.program, 2, budget=GENEROUS)
        assert budgeted.holds == unbudgeted.holds
        assert not budgeted.unknown

    def test_violation_beats_unknown(self):
        """A real counterexample is reported even under a tight budget --
        if any depth finds it, sibling unknowns do not mask it."""
        program = _broken_program()
        unbudgeted = find_error_trace(program, 3)
        assert unbudgeted.trace is not None
        budgeted = find_error_trace(program, 3, budget=GENEROUS)
        assert budgeted.trace is not None
        assert budgeted.depth == unbudgeted.depth


class TestInductionDegradation:
    def test_starved_obligations_are_inconclusive(self, lock_bundle):
        result = check_inductive(
            lock_bundle.program, list(lock_bundle.invariant), budget=STARVED
        )
        assert not result.holds
        assert result.cti is None
        assert result.unknown_obligations  # every obligation starved

    def test_generous_budget_still_proves(self, lock_bundle):
        result = check_inductive(
            lock_bundle.program, list(lock_bundle.invariant), budget=GENEROUS
        )
        assert result.holds
        assert result.unknown_obligations == ()


class TestHoudiniDegradation:
    def test_starved_candidates_dropped_conservatively(self, lock_bundle):
        candidates = list(lock_bundle.invariant)
        result = houdini(lock_bundle.program, candidates, budget=STARVED)
        assert result.invariant == ()
        assert set(result.dropped_unknown) == {c.name for c in candidates}
        # Unknown drops are not misreported as refutations.
        assert result.dropped_initiation == ()
        assert result.dropped_consecution == ()

    def test_generous_budget_matches_unbudgeted(self, lock_bundle):
        candidates = list(lock_bundle.invariant)
        unbudgeted = houdini(lock_bundle.program, candidates)
        budgeted = houdini(lock_bundle.program, candidates, budget=GENEROUS)
        assert {c.name for c in budgeted.invariant} == {
            c.name for c in unbudgeted.invariant
        }
        assert budgeted.dropped_unknown == ()


class TestUpdrDegradation:
    def test_starved_updr_returns_unknown_after_restarts(self):
        result = updr(_monotone_program(), budget=STARVED, max_restarts=2)
        assert result.status == UpdrStatus.UNKNOWN
        assert result.failure is FailureReason.TIMEOUT
        assert result.restarts == 2

    def test_budgeted_updr_still_proves_safe(self):
        result = updr(_monotone_program(), budget=GENEROUS)
        assert result.status == UpdrStatus.SAFE
        assert result.failure is None

    def test_budgeted_updr_still_refutes_unsafe(self):
        result = updr(_broken_program(), budget=GENEROUS)
        assert result.status == UpdrStatus.UNSAFE
        assert result.trace is not None
