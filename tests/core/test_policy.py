"""User policies and the violation-slice extraction."""

import pytest

from repro.core.induction import check_inductive
from repro.core.policy import (
    GeneralizingOraclePolicy,
    OraclePolicy,
    violation_subconfiguration,
)
from repro.core.session import AddConjecture, Session, Stop
from repro.logic import Elem, make_structure, parse_formula


@pytest.fixture()
def fig7_state(ring_vocab):
    node, ident = ring_vocab.sorts
    node0, node1 = Elem("node0", node), Elem("node1", node)
    id0, id1 = Elem("id0", ident), Elem("id1", ident)
    return make_structure(
        ring_vocab,
        universe={node: [node0, node1], ident: [id0, id1]},
        rels={
            "le": [(id0, id0), (id0, id1), (id1, id1)],
            "leader": [(node0,)],
            "pnd": [(id1, node1)],
        },
        funcs={"idn": {(node0,): id0, (node1,): id1}},
    )


class TestViolationSubconfiguration:
    def test_extracts_relevant_facts(self, ring_vocab, fig7_state):
        c1 = parse_formula(
            "forall N1, N2. ~(N1 ~= N2 & leader(N1) & le(idn(N1), idn(N2)))",
            ring_vocab,
        )
        assert not fig7_state.satisfies(c1)
        partial = violation_subconfiguration(fig7_state, c1)
        facts = {str(f) for f in partial.facts()}
        assert "leader(node0)" in facts
        assert "le(id0, id1)" in facts
        # Function bindings connecting the literals are included.
        assert "idn(node0) = id0" in facts
        assert "idn(node1) = id1" in facts
        # Irrelevant state is not.
        assert not any("pnd" in f for f in facts)
        assert not any("btw" in f for f in facts)

    def test_excludes_origin_state(self, ring_vocab, fig7_state):
        from repro.logic import conjecture

        c1 = parse_formula(
            "forall N1, N2. ~(N1 ~= N2 & leader(N1) & le(idn(N1), idn(N2)))",
            ring_vocab,
        )
        partial = violation_subconfiguration(fig7_state, c1)
        assert not fig7_state.satisfies(conjecture(partial))

    def test_satisfied_formula_returns_none(self, ring_vocab, fig7_state):
        c0 = parse_formula(
            "forall N1, N2. ~(leader(N1) & leader(N2) & N1 ~= N2)", ring_vocab
        )
        assert fig7_state.satisfies(c0)
        assert violation_subconfiguration(fig7_state, c0) is None

    def test_non_universal_returns_none(self, ring_vocab, fig7_state):
        f = parse_formula("exists N:node. leader(N)", ring_vocab)
        assert violation_subconfiguration(fig7_state, f) is None


class TestOraclePolicy:
    @pytest.mark.slow
    def test_skips_present_conjectures(self, leader_bundle):
        session = Session(leader_bundle.program, initial=leader_bundle.invariant[:2])
        result = session.find_cti()
        policy = OraclePolicy(leader_bundle.invariant)
        action = policy.decide(session, result.cti)
        assert isinstance(action, AddConjecture)
        assert action.conjecture.name in ("C2", "C3")

    @pytest.mark.slow
    def test_stops_without_matching_conjecture(self, leader_bundle):
        session = Session(leader_bundle.program, initial=leader_bundle.safety)
        result = session.find_cti()
        policy = OraclePolicy(leader_bundle.safety)  # nothing new to offer
        action = policy.decide(session, result.cti)
        assert isinstance(action, Stop)


class TestGeneralizingOraclePolicy:
    @pytest.mark.slow
    def test_produces_equivalent_conjecture(self, leader_bundle):
        from repro.core.minimize import PositiveTuples, SortSize
        from repro.logic import Sort, and_, not_
        from repro.solver import EprSolver

        program = leader_bundle.program
        measures = [
            SortSize(Sort("node")),
            SortSize(Sort("id")),
            PositiveTuples(program.vocab.relation("pnd")),
            PositiveTuples(program.vocab.relation("leader")),
        ]
        session = Session(
            program, initial=leader_bundle.safety, bmc_bound=3, measures=measures
        )
        result = session.find_cti()
        policy = GeneralizingOraclePolicy(leader_bundle.invariant[1:], bound=3)
        action = policy.decide(session, result.cti)
        assert isinstance(action, AddConjecture)
        # It must eliminate the CTI...
        assert not result.cti.state.satisfies(action.conjecture.formula)
        # ...and be equivalent (under the axioms) to a published conjecture.
        axioms = program.axiom_formula
        matches = 0
        for target in leader_bundle.invariant[1:]:
            a = EprSolver(program.vocab)
            a.add(and_(axioms, action.conjecture.formula, not_(target.formula)))
            b = EprSolver(program.vocab)
            b.add(and_(axioms, target.formula, not_(action.conjecture.formula)))
            if not a.check().satisfiable and not b.check().satisfiable:
                matches += 1
        assert matches == 1
