"""Trace objects: validation, rendering, and label bookkeeping."""

import pytest

from repro.core.bounded import check_k_invariance
from repro.core.trace import Trace
from repro.logic import parse_formula


@pytest.fixture(scope="module")
def election_trace(leader_bundle):
    vocab = leader_bundle.program.vocab
    no_leader = parse_formula("forall N:node. ~leader(N)", vocab)
    result = check_k_invariance(leader_bundle.program, no_leader, 2)
    assert not result.holds
    return result.trace


@pytest.mark.slow
class TestTrace:
    def test_lengths_consistent(self, election_trace):
        assert election_trace.length == len(election_trace.states) - 1
        assert len(election_trace.labels) == election_trace.length

    def test_label_count_validated(self, leader_bundle, election_trace):
        with pytest.raises(ValueError):
            Trace(
                leader_bundle.program,
                election_trace.states,
                election_trace.labels[:-1],
            )

    def test_validate_accepts_genuine_trace(self, election_trace):
        election_trace.validate()

    def test_validate_rejects_fake_step(self, leader_bundle, election_trace):
        """Swapping in an unrelated state must fail validation."""
        states = list(election_trace.states)
        vocab = leader_bundle.program.vocab
        pnd = vocab.relation("pnd")
        # Empty the pnd relation in the final state: no action removes
        # pending messages, so this cannot be a transition result.
        assert states[-2].positive_count(pnd) >= 1
        fake_final = states[-1].with_rel(pnd, set())
        fake = Trace(
            leader_bundle.program,
            tuple(states[:-1] + [fake_final]),
            election_trace.labels,
        )
        with pytest.raises(AssertionError):
            fake.validate()

    def test_str_mentions_steps_and_actions(self, election_trace):
        text = str(election_trace)
        assert "state 0:" in text
        assert "step 1" in text
        for label in election_trace.labels:
            for part in label.split(" / "):
                assert part  # labels are non-empty action paths

    def test_final_state_elects_leader(self, leader_bundle, election_trace):
        leader = leader_bundle.program.vocab.relation("leader")
        assert election_trace.states[-1].positive_count(leader) >= 1
        assert election_trace.states[0].positive_count(leader) == 0

    def test_to_dot(self, election_trace):
        dot = election_trace.to_dot()
        assert dot.startswith("digraph")
        assert "cluster_0" in dot
