"""Inductiveness checking and CTIs (Eq. 2) on the leader election model."""

import pytest

from repro.core.induction import (
    Conjecture,
    check_inductive,
    check_initiation,
    check_obligation,
    obligations,
)
from repro.logic import parse_formula


class TestConjecture:
    def test_universal_required(self, ring_vocab):
        with pytest.raises(ValueError, match="universally"):
            Conjecture("bad", parse_formula("exists N:node. leader(N)", ring_vocab))

    def test_closed_required(self, ring_vocab):
        with pytest.raises(ValueError, match="closed"):
            Conjecture("bad", parse_formula("leader(N)", ring_vocab))

    def test_quantifier_free_closed_ok(self, leader_bundle):
        vocab = leader_bundle.program.vocab
        Conjecture("ok", parse_formula("~leader(n)", vocab))


class TestObligations:
    def test_structure(self, leader_bundle):
        obls = obligations(leader_bundle.program, list(leader_bundle.invariant))
        kinds = [o.kind for o in obls]
        # 4 initiation + 1 body-abort safety + 4 consecution
        assert kinds.count("initiation") == 4
        assert kinds.count("safety") == 1
        assert kinds.count("consecution") == 4

    def test_safety_obligation_only_when_aborts_possible(self, leader_bundle):
        from repro.rml.ast import Program, Skip

        program = Program(
            name="no_asserts",
            vocab=leader_bundle.program.vocab,
            axioms=leader_bundle.program.axioms,
            init=leader_bundle.program.init,
            body=Skip(),
        )
        obls = obligations(program, list(leader_bundle.safety))
        assert all(o.kind != "safety" for o in obls)


class TestLeaderElection:
    @pytest.mark.slow
    def test_full_invariant_inductive(self, leader_bundle):
        result = check_inductive(leader_bundle.program, list(leader_bundle.invariant))
        assert result.holds
        assert result.cti is None

    def test_safety_alone_not_inductive(self, leader_bundle):
        result = check_inductive(leader_bundle.program, list(leader_bundle.safety))
        assert not result.holds
        cti = result.cti
        assert cti.obligation.kind in ("safety", "consecution")
        # The CTI state satisfies the axioms and all current conjectures.
        assert cti.state.satisfies(leader_bundle.program.axiom_formula)
        assert cti.state.satisfies(leader_bundle.safety[0].formula)

    def test_cti_successor_witnesses_violation(self, leader_bundle):
        result = check_inductive(leader_bundle.program, list(leader_bundle.safety))
        cti = result.cti
        if cti.obligation.kind == "consecution":
            assert cti.successor is not None
            assert not cti.successor.satisfies(cti.obligation.post)
        else:
            assert cti.successor is None  # an abort, not a conjecture violation

    @pytest.mark.slow
    def test_dropping_c3_gives_cti_on_c2(self, leader_bundle):
        result = check_inductive(
            leader_bundle.program, list(leader_bundle.invariant[:3])
        )
        assert not result.holds
        # Fig. 9: without C3, consecution of C2 fails via a receive.
        assert result.cti.obligation.target == "C2"
        assert "receive" in result.cti.action

    @pytest.mark.slow
    def test_missing_axiom_breaks_invariant(self, leader_bundle):
        buggy = leader_bundle.program.without_axiom("unique_ids")
        result = check_inductive(buggy, list(leader_bundle.invariant))
        assert not result.holds

    def test_initiation_check(self, leader_bundle):
        vocab = leader_bundle.program.vocab
        good = Conjecture("g", parse_formula("forall N:node. ~leader(N)", vocab))
        assert not check_initiation(leader_bundle.program, good).satisfiable
        bad = Conjecture("b", parse_formula("forall N:node. leader(N)", vocab))
        assert check_initiation(leader_bundle.program, bad).satisfiable

    @pytest.mark.slow
    def test_obligation_vc_satisfiability_matches(self, leader_bundle):
        obls = obligations(leader_bundle.program, list(leader_bundle.invariant))
        for obligation in obls:
            result = check_obligation(leader_bundle.program, obligation)
            assert not result.satisfiable  # the invariant is inductive
