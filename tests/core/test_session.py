"""The Figure 5 session loop with scriptable user policies."""

import pytest

from repro.core.induction import Conjecture
from repro.core.policy import OraclePolicy, ScriptedPolicy
from repro.core.session import (
    AddConjecture,
    RemoveConjecture,
    Session,
    SessionError,
    Stop,
)
from repro.logic import parse_formula


class TestSessionBasics:
    def test_add_and_remove(self, leader_bundle):
        session = Session(leader_bundle.program, initial=leader_bundle.safety)
        session.add_conjecture(leader_bundle.invariant[1])
        assert session.conjecture_named("C1") is not None
        session.remove_conjecture("C1")
        assert session.conjecture_named("C1") is None

    def test_duplicate_name_rejected(self, leader_bundle):
        session = Session(leader_bundle.program, initial=leader_bundle.safety)
        with pytest.raises(SessionError, match="already present"):
            session.add_conjecture(leader_bundle.safety[0])

    def test_initiation_enforced(self, leader_bundle):
        """The search maintains that every conjecture satisfies initiation
        (Section 4.2); a conjecture false initially is rejected."""
        session = Session(leader_bundle.program, initial=leader_bundle.safety)
        vocab = leader_bundle.program.vocab
        bad = Conjecture("bad", parse_formula("forall N:node. leader(N)", vocab))
        with pytest.raises(SessionError, match="initiation"):
            session.add_conjecture(bad)

    def test_remove_unknown_rejected(self, leader_bundle):
        session = Session(leader_bundle.program)
        with pytest.raises(SessionError):
            session.remove_conjecture("nope")

    @pytest.mark.slow
    def test_check_inductive_with_full_invariant(self, leader_bundle):
        session = Session(leader_bundle.program, initial=leader_bundle.invariant)
        assert session.check().holds

    @pytest.mark.slow
    def test_cti_partial_drops_scratch(self, leader_bundle):
        session = Session(leader_bundle.program, initial=leader_bundle.safety)
        result = session.find_cti()
        partial = session.cti_partial(result.cti)
        names = {fact.symbol.name for fact in partial.facts()}
        assert names.isdisjoint({"n", "m", "i"})
        with_scratch = session.cti_partial(result.cti, include_scratch=True)
        scratch_names = {fact.symbol.name for fact in with_scratch.facts()}
        assert {"n", "m", "i"} <= scratch_names


class TestOracleSession:
    @pytest.mark.slow
    def test_leader_election_g_is_3(self, leader_bundle):
        """Replaying with the paper's invariant measures G = 3 CTIs, the
        Figure 14 leader-election row."""
        session = Session(leader_bundle.program, initial=leader_bundle.safety)
        outcome = session.run(OraclePolicy(leader_bundle.invariant))
        assert outcome.success
        assert outcome.cti_count == 3
        names = {c.name for c in outcome.conjectures}
        assert names == {"C0", "C1", "C2", "C3"}

    def test_oracle_stops_when_exhausted(self, leader_bundle):
        session = Session(leader_bundle.program, initial=leader_bundle.safety)
        # Only C1 available: the session adds it, then cannot proceed.
        outcome = session.run(OraclePolicy(leader_bundle.invariant[:2]))
        assert not outcome.success
        assert "no remaining oracle conjecture" in outcome.reason


class TestScriptedPolicy:
    @pytest.mark.slow
    def test_script_steps_run_in_order(self, leader_bundle):
        session = Session(leader_bundle.program, initial=leader_bundle.safety)
        seen = []

        def step1(session_, cti):
            seen.append("one")
            return AddConjecture(leader_bundle.invariant[2])  # C2 first

        def step2(session_, cti):
            seen.append("two")
            return Stop("enough")

        outcome = session.run(ScriptedPolicy([step1, step2]))
        assert seen == ["one", "two"]
        assert not outcome.success and outcome.reason == "enough"

    @pytest.mark.slow
    def test_weakening_via_remove(self, leader_bundle):
        """A 'wrong' conjecture can be removed when a CTI reveals it."""
        vocab = leader_bundle.program.vocab
        wrong = Conjecture(
            "wrong", parse_formula("forall N:node. ~leader(N)", vocab)
        )
        session = Session(leader_bundle.program, initial=(*leader_bundle.invariant, wrong))

        def drop_wrong(session_, cti):
            return RemoveConjecture("wrong")

        outcome = session.run(ScriptedPolicy([drop_wrong]))
        assert outcome.success  # after removal the rest is inductive
        assert outcome.cti_count == 1

    def test_exhausted_script_stops(self, leader_bundle):
        session = Session(leader_bundle.program, initial=leader_bundle.safety)
        outcome = session.run(ScriptedPolicy([]))
        assert not outcome.success
        assert outcome.reason == "script exhausted"

    @pytest.mark.slow
    def test_transcript_records_events(self, leader_bundle):
        session = Session(leader_bundle.program, initial=leader_bundle.safety)
        session.run(OraclePolicy(leader_bundle.invariant))
        text = "\n".join(session.transcript)
        assert "CTI #1" in text and "add" in text and "inductive" in text
