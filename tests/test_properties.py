"""Property-based tests (hypothesis) on the core data structures and the
solver/evaluator agreement invariants."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.logic import (
    FALSE,
    TRUE,
    And,
    App,
    Elem,
    Eq,
    FuncDecl,
    Not,
    Or,
    Rel,
    RelDecl,
    Sort,
    Var,
    all_structures,
    conjecture,
    diagram,
    embeds_into,
    forall,
    exists,
    from_structure,
    generalizes,
    make_structure,
    nnf,
    not_,
    prenex,
    vocabulary,
)
from repro.logic.fragments import is_quantifier_free
from repro.logic.lexer import tokenize
from repro.logic.printer import formula_to_str
from repro.solver import Solver

elem = Sort("elem")
p = RelDecl("p", (elem,))
r = RelDecl("r", (elem, elem))
c = FuncDecl("c", (), elem)
VOCAB = vocabulary(sorts=[elem], relations=[p, r], functions=[c])

X, Y, Z = Var("X", elem), Var("Y", elem), Var("Z", elem)
VARS = [X, Y, Z]

# --------------------------------------------------------------- strategies

terms = st.sampled_from([X, Y, Z, App(c, ())])


@st.composite
def atoms(draw):
    kind = draw(st.sampled_from(["p", "r", "eq"]))
    if kind == "p":
        return Rel(p, (draw(terms),))
    if kind == "r":
        return Rel(r, (draw(terms), draw(terms)))
    return Eq(draw(terms), draw(terms))


def formulas(max_depth=3):
    def extend(children):
        return st.one_of(
            st.builds(lambda a: Not(a), children),
            st.builds(lambda a, b: And((a, b)), children, children),
            st.builds(lambda a, b: Or((a, b)), children, children),
            st.builds(
                lambda v, a: forall((v,), a), st.sampled_from(VARS), children
            ),
            st.builds(
                lambda v, a: exists((v,), a), st.sampled_from(VARS), children
            ),
        )

    return st.recursive(atoms(), extend, max_leaves=8)


def closed(formula):
    from repro.logic import free_vars

    frees = tuple(free_vars(formula))
    return forall(frees, formula) if frees else formula


small_structures = st.builds(
    lambda bits, rbits, cv: _structure(bits, rbits, cv),
    st.tuples(st.booleans(), st.booleans()),
    st.tuples(st.booleans(), st.booleans(), st.booleans(), st.booleans()),
    st.integers(min_value=0, max_value=1),
)

E0, E1 = Elem("e0", elem), Elem("e1", elem)


def _structure(bits, rbits, c_index):
    pairs = [(E0, E0), (E0, E1), (E1, E0), (E1, E1)]
    return make_structure(
        VOCAB,
        universe={elem: [E0, E1]},
        rels={
            "p": [(e,) for e, bit in zip((E0, E1), bits) if bit],
            "r": [pair for pair, bit in zip(pairs, rbits) if bit],
        },
        funcs={"c": {(): (E0, E1)[c_index]}},
    )


# ------------------------------------------------------------------- tests


class TestNormalForms:
    @given(formulas())
    @settings(max_examples=60, deadline=None)
    def test_nnf_preserves_semantics(self, formula):
        closed_formula = closed(formula)
        transformed = nnf(closed_formula)
        for structure in all_structures(VOCAB, {elem: 2}, max_count=8):
            assert structure.satisfies(closed_formula) == structure.satisfies(
                transformed
            )

    @given(formulas())
    @settings(max_examples=40, deadline=None)
    def test_prenex_roundtrip_semantics(self, formula):
        closed_formula = closed(formula)
        result = prenex(closed_formula)
        assert is_quantifier_free(result.matrix)
        rebuilt = result.to_formula()
        for structure in all_structures(VOCAB, {elem: 2}, max_count=8):
            assert structure.satisfies(closed_formula) == structure.satisfies(rebuilt)

    @given(formulas())
    @settings(max_examples=60, deadline=None)
    def test_double_negation_nnf_stable(self, formula):
        closed_formula = closed(formula)
        assert nnf(not_(not_(closed_formula))) == nnf(closed_formula)

    @given(formulas())
    @settings(max_examples=60, deadline=None)
    def test_printer_output_tokenizes(self, formula):
        tokenize(formula_to_str(closed(formula)))

    @given(formulas())
    @settings(max_examples=40, deadline=None)
    def test_print_parse_roundtrip(self, formula):
        from repro.logic import parse_formula

        closed_formula = closed(formula)
        printed = formula_to_str(closed_formula)
        reparsed = parse_formula(printed, VOCAB)
        for structure in all_structures(VOCAB, {elem: 2}, max_count=6):
            assert structure.satisfies(closed_formula) == structure.satisfies(reparsed)


class TestEprAgainstEvaluator:
    @given(formulas())
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_sat_iff_some_small_model(self, formula):
        """For this tiny vocabulary every satisfiable closed formula in our
        query fragment has a model of size <= #existentials + 1, so EPR
        satisfiability must agree with brute-force over sizes 1..3 --
        whenever the formula lies in the supported fragment."""
        from repro.logic.transform import NotInFragment
        from repro.solver import EprSolver
        from repro.solver.grounding import GroundingExplosion

        closed_formula = closed(formula)
        solver = EprSolver(VOCAB)
        solver.add(closed_formula)
        try:
            result = solver.check()
        except (NotInFragment, GroundingExplosion):
            return  # outside exists*forall*: rejection is the contract
        brute = any(
            structure.satisfies(closed_formula)
            for size in (1, 2, 3)
            for structure in all_structures(VOCAB, {elem: size}, max_count=4096)
        )
        assert result.satisfiable == brute
        if result.satisfiable:
            assert result.model.satisfies(closed_formula)


class TestPartialStructures:
    @given(small_structures, st.integers(min_value=0, max_value=4095))
    @settings(max_examples=60, deadline=None)
    def test_conjecture_vs_embedding(self, structure, mask):
        """t |= phi(s) iff s does not embed into t, for random slices s of
        random states and random targets t (Lemma 4.2 generalized)."""
        full = from_structure(structure)
        facts = list(full.facts())
        chosen = [fact for i, fact in enumerate(facts) if mask >> (i % 12) & 1]
        partial = full.keep_facts(chosen)
        phi = conjecture(partial)
        assert structure.satisfies(phi) == (embeds_into(partial, structure) is None)

    @given(small_structures)
    @settings(max_examples=30, deadline=None)
    def test_diagram_is_satisfied_by_origin(self, structure):
        partial = from_structure(structure)
        assert structure.satisfies(diagram(partial))
        assert not structure.satisfies(conjecture(partial))

    @given(small_structures, st.integers(min_value=0, max_value=63))
    @settings(max_examples=40, deadline=None)
    def test_generalization_order_monotone(self, structure, mask):
        full = from_structure(structure)
        facts = list(full.facts())
        subset = [fact for i, fact in enumerate(facts) if mask >> (i % 6) & 1]
        partial = full.keep_facts(subset)
        assert generalizes(partial, full)


class TestSatSolverProperties:
    @given(
        st.lists(
            st.lists(
                st.integers(min_value=1, max_value=5).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_model_satisfies_clauses(self, cnf):
        solver = Solver()
        for _ in range(5):
            solver.new_var()
        solver.add_clauses(cnf)
        result = solver.solve()
        if result.satisfiable:
            assert all(
                any((lit > 0) == result.model[abs(lit)] for lit in clause)
                for clause in cnf
            )
        else:
            import itertools

            assert not any(
                all(
                    any((lit > 0) == bits[abs(lit) - 1] for lit in clause)
                    for clause in cnf
                )
                for bits in itertools.product([False, True], repeat=5)
            )
