"""Substitution: variables, wp symbol replacement, symbol renaming."""

import pytest

from repro.logic import (
    App,
    Eq,
    FreshNames,
    FuncDecl,
    Ite,
    Not,
    Rel,
    RelDecl,
    Sort,
    Var,
    and_,
    eq,
    exists,
    forall,
    fresh_var,
    instantiate,
    not_,
    or_,
    rename_symbols,
    replace_func,
    replace_rel,
    substitute,
    substitute_term,
)

elem = Sort("elem")
p = RelDecl("p", (elem,))
r = RelDecl("r", (elem, elem))
c = FuncDecl("c", (), elem)
f = FuncDecl("f", (elem,), elem)
X, Y, Z = Var("X", elem), Var("Y", elem), Var("Z", elem)
C = App(c, ())


class TestFreshNames:
    def test_fresh_progression(self):
        fresh = FreshNames(["x"])
        assert fresh("x") == "x_1"
        assert fresh("x") == "x_2"
        assert fresh("y") == "y"
        assert fresh("y") == "y_1"

    def test_fresh_var_avoids(self):
        var = fresh_var("X", elem, [X, Var("X_1", elem)])
        assert var.name == "X_2"


class TestVariableSubstitution:
    def test_simple(self):
        formula = Rel(p, (X,))
        assert substitute(formula, {X: C}) == Rel(p, (C,))

    def test_through_function(self):
        term = App(f, (X,))
        assert substitute_term(term, {X: C}) == App(f, (C,))

    def test_through_ite(self):
        term = Ite(Rel(p, (X,)), X, Y)
        out = substitute_term(term, {X: C})
        assert out == Ite(Rel(p, (C,)), C, Y)

    def test_bound_variables_shadow(self):
        formula = forall((X,), Rel(r, (X, Y)))
        out = substitute(formula, {X: C, Y: C})
        assert out == forall((X,), Rel(r, (X, C)))

    def test_capture_avoidance(self):
        # (forall X. r(X, Y))[X/Y] must NOT capture: the bound X is renamed.
        formula = forall((X,), Rel(r, (X, Y)))
        out = substitute(formula, {Y: X})
        assert isinstance(out.vars[0], Var)
        bound = out.vars[0]
        assert bound != X
        assert out.body == Rel(r, (bound, X))

    def test_instantiate(self):
        formula = forall((X, Y), Rel(r, (X, Y)))
        assert instantiate(formula, (C, C)) == Rel(r, (C, C))
        with pytest.raises(ValueError):
            instantiate(formula, (C,))


class TestReplaceRel:
    def test_wp_style_update(self):
        # Q = p(c); update p(x) := r(x, c)  =>  Q' = r(c, c)
        post = Rel(p, (C,))
        out = replace_rel(post, p, (X,), Rel(r, (X, C)))
        assert out == Rel(r, (C, C))

    def test_old_value_semantics(self):
        # p(x) := ~p(x); occurrences of p inside the definition are OLD.
        post = Rel(p, (C,))
        out = replace_rel(post, p, (X,), not_(Rel(p, (X,))))
        assert out == not_(Rel(p, (C,)))
        # Applying twice gives double negation, not oscillation artifacts.
        from repro.logic import nnf

        out2 = replace_rel(out, p, (X,), not_(Rel(p, (X,))))
        assert nnf(out2) == Rel(p, (C,))

    def test_rewrites_under_quantifiers(self):
        post = forall((Y,), Rel(p, (Y,)))
        out = replace_rel(post, p, (X,), Rel(r, (X, X)))
        assert out == forall((Y,), Rel(r, (Y, Y)))

    def test_quantifier_capture_avoided(self):
        # Q = forall X. p(X); definition mentions free X? use fresh def var.
        post = forall((X,), or_(Rel(p, (X,)), Rel(r, (X, Y))))
        out = replace_rel(post, p, (Z,), Rel(r, (Z, Y)))
        # The bound X must not capture the definition's free Y.
        assert isinstance(out.vars[0], Var)

    def test_untouched_relations_stay(self):
        post = and_(Rel(p, (C,)), Rel(r, (C, C)))
        out = replace_rel(post, p, (X,), eq(X, C))
        assert Rel(r, (C, C)) in out.args


class TestReplaceFunc:
    def test_constant_replacement(self):
        post = Rel(p, (C,))
        out = replace_func(post, c, (), X)
        assert out == Rel(p, (X,))

    def test_unary_function(self):
        post = Eq(App(f, (C,)), C)
        out = replace_func(post, f, (X,), Ite(Rel(p, (X,)), X, App(f, (X,))))
        # f(c) becomes ite(p(c), c, f(c)) -- the inner f is the OLD f.
        assert out == Eq(Ite(Rel(p, (C,)), C, App(f, (C,))), C)

    def test_nested_applications_innermost_first(self):
        post = Eq(App(f, (App(f, (C,)),)), C)
        out = replace_func(post, f, (X,), X)  # f := identity
        assert out == Eq(C, C)


class TestRenameSymbols:
    def test_relation_and_function(self):
        p2 = RelDecl("p_v1", (elem,))
        c2 = FuncDecl("c_v1", (), elem)
        out = rename_symbols(Rel(p, (App(c, ()),)), {p: p2, c: c2})
        assert out == Rel(p2, (App(c2, ()),))

    def test_sort_mismatch_rejected(self):
        other = RelDecl("q", (elem, elem))
        with pytest.raises(ValueError):
            rename_symbols(Rel(p, (C,)), {p: other})

    def test_rename_under_quantifier(self):
        p2 = RelDecl("p_v1", (elem,))
        formula = forall((X,), Rel(p, (X,)))
        out = rename_symbols(formula, {p: p2})
        assert out == forall((X,), Rel(p2, (X,)))
