"""Vocabulary construction, lookup and stratification (Section 3.1)."""

import pytest

from repro.logic import (
    FuncDecl,
    RelDecl,
    Sort,
    StratificationError,
    Vocabulary,
    vocabulary,
)


class TestSortsAndDecls:
    def test_sort_identity(self):
        assert Sort("node") == Sort("node")
        assert Sort("node") != Sort("id")

    def test_empty_sort_name_rejected(self):
        with pytest.raises(ValueError):
            Sort("")

    def test_rel_decl_arity(self):
        node = Sort("node")
        assert RelDecl("leader", (node,)).arity == 1
        assert RelDecl("btw", (node, node, node)).arity == 3

    def test_func_decl_constant(self):
        node = Sort("node")
        const = FuncDecl("n", (), node)
        assert const.is_constant
        assert const.arity == 0
        assert not FuncDecl("f", (node,), node is node and Sort("id")).is_constant


class TestVocabulary:
    def test_lookup_by_name(self, ring_vocab):
        assert ring_vocab.relation("le").arity == 2
        assert ring_vocab.function("idn").sort == Sort("id")
        assert "le" in ring_vocab
        assert "nonexistent" not in ring_vocab
        assert ring_vocab.get("nonexistent") is None

    def test_relation_lookup_rejects_functions(self, ring_vocab):
        with pytest.raises(KeyError):
            ring_vocab.relation("idn")
        with pytest.raises(KeyError):
            ring_vocab.function("le")

    def test_duplicate_symbol_rejected(self):
        node = Sort("node")
        with pytest.raises(ValueError, match="duplicate"):
            vocabulary(
                sorts=[node],
                relations=[RelDecl("p", (node,))],
                functions=[FuncDecl("p", (), node)],
            )

    def test_undeclared_sort_rejected(self):
        node, ident = Sort("node"), Sort("id")
        with pytest.raises(ValueError, match="undeclared sort"):
            vocabulary(sorts=[node], relations=[RelDecl("le", (ident, ident))])

    def test_duplicate_sort_rejected(self):
        node = Sort("node")
        with pytest.raises(ValueError, match="duplicate sort"):
            Vocabulary((node, node), (), ())

    def test_extended_adds_symbols(self, ring_vocab):
        extra = RelDecl("extra", ())
        bigger = ring_vocab.extended(relations=[extra])
        assert bigger.get("extra") == extra
        assert ring_vocab.get("extra") is None  # original untouched

    def test_constants_and_proper_functions(self, ring_vocab):
        assert [f.name for f in ring_vocab.proper_functions()] == ["idn"]
        assert list(ring_vocab.constants()) == []


class TestStratification:
    def test_ring_vocab_is_stratified(self, ring_vocab):
        order = ring_vocab.stratification_order()
        # idn : node -> id requires id < node.
        assert order.index(Sort("id")) < order.index(Sort("node"))

    def test_cycle_detected(self):
        a, b = Sort("a"), Sort("b")
        vocab = vocabulary(
            sorts=[a, b],
            functions=[FuncDecl("f", (a,), b), FuncDecl("g", (b,), a)],
        )
        assert not vocab.is_stratified()
        with pytest.raises(StratificationError, match="cyclic"):
            vocab.check_stratified()

    def test_self_loop_detected(self):
        a = Sort("a")
        vocab = vocabulary(sorts=[a], functions=[FuncDecl("f", (a,), a)])
        with pytest.raises(StratificationError):
            vocab.check_stratified()

    def test_three_level_chain(self):
        a, b, c = Sort("a"), Sort("b"), Sort("c")
        vocab = vocabulary(
            sorts=[c, a, b],
            functions=[FuncDecl("f", (a,), b), FuncDecl("g", (b,), c)],
        )
        order = vocab.stratification_order()
        assert order.index(c) < order.index(b) < order.index(a)

    def test_constants_do_not_affect_stratification(self):
        a = Sort("a")
        vocab = vocabulary(sorts=[a], functions=[FuncDecl("x", (), a)])
        assert vocab.is_stratified()

    def test_paper_example(self):
        """Fig. 1's shape: messages -> nodes allowed, not both directions."""
        node, msg = Sort("node"), Sort("msg")
        ok = vocabulary(sorts=[node, msg], functions=[FuncDecl("src", (msg,), node)])
        assert ok.is_stratified()
        bad = ok.extended(functions=[FuncDecl("inbox", (node,), msg)])
        assert not bad.is_stratified()
