"""Partial structures, generalization order, diagrams, conjectures
(Definitions 2-5, Lemma 4.2)."""

import pytest

from repro.logic import (
    Elem,
    Fact,
    conjecture,
    diagram,
    embeds_into,
    from_structure,
    generalizes,
    make_structure,
    parse_formula,
)
from repro.logic.partial import PartialStructure


@pytest.fixture()
def state(ring_vocab):
    node, ident = ring_vocab.sorts
    node0, node1 = Elem("node0", node), Elem("node1", node)
    id0, id1 = Elem("id0", ident), Elem("id1", ident)
    return make_structure(
        ring_vocab,
        universe={node: [node0, node1], ident: [id0, id1]},
        rels={
            "le": [(id0, id0), (id0, id1), (id1, id1)],
            "leader": [(node0,)],
            "pnd": [(id1, node1)],
        },
        funcs={"idn": {(node0,): id0, (node1,): id1}},
    )


class TestFromStructure:
    def test_total_structure_fully_defined(self, ring_vocab, state):
        partial = from_structure(state)
        node, ident = ring_vocab.sorts
        # le: 4 entries, btw: 8, leader: 2, pnd: 4, idn: 2x2 = 4
        assert partial.fact_count() == 4 + 8 + 2 + 4 + 4

    def test_function_facts_have_single_positive(self, state):
        partial = from_structure(state)
        idn_positive = [
            fact
            for fact in partial.facts()
            if not hasattr(fact.symbol, "arg_sorts") or fact.symbol.name == "idn"
            if fact.symbol.name == "idn" and fact.positive
        ]
        assert len(idn_positive) == 2

    def test_two_positive_results_rejected(self, ring_vocab, state):
        idn = ring_vocab.function("idn")
        node, ident = ring_vocab.sorts
        node0 = state.universe[node][0]
        id0, id1 = state.universe[ident]
        with pytest.raises(ValueError, match="two positive"):
            PartialStructure(
                ring_vocab,
                dict(state.universe),
                {},
                {idn: {(node0, id0): True, (node0, id1): True}},
            )


class TestGeneralizationOps:
    def test_forget_symbol(self, state):
        partial = from_structure(state).forget("btw").forget("pnd")
        assert all(fact.symbol.name not in ("btw", "pnd") for fact in partial.facts())

    def test_forget_polarity(self, state):
        partial = from_structure(state).forget("leader", polarity=False)
        leader_facts = [f for f in partial.facts() if f.symbol.name == "leader"]
        assert len(leader_facts) == 1 and leader_facts[0].positive

    def test_restrict_elements(self, ring_vocab, state):
        node, ident = ring_vocab.sorts
        keep = [state.universe[node][0], *state.universe[ident]]
        partial = from_structure(state).restrict_elements(keep)
        for fact in partial.facts():
            assert all(elem in keep for elem in fact.args)

    def test_drop_fact(self, state):
        partial = from_structure(state)
        fact = next(iter(partial.facts()))
        smaller = partial.drop_fact(fact)
        assert smaller.fact_count() == partial.fact_count() - 1

    def test_keep_facts(self, ring_vocab, state):
        partial = from_structure(state)
        wanted = [f for f in partial.facts() if f.symbol.name == "leader" and f.positive]
        kept = partial.keep_facts(wanted)
        assert list(kept.facts()) == wanted


class TestGeneralizationOrder:
    def test_forgetting_generalizes(self, state):
        full = from_structure(state)
        smaller = full.forget("btw").forget("pnd")
        assert generalizes(smaller, full)
        assert not generalizes(full, smaller)

    def test_reflexive(self, state):
        full = from_structure(state)
        assert generalizes(full, full)

    def test_conflicting_fact_not_comparable(self, ring_vocab, state):
        full = from_structure(state)
        leader = ring_vocab.relation("leader")
        node0 = state.universe[ring_vocab.sorts[0]][0]
        flipped = PartialStructure(
            ring_vocab, dict(state.universe), {leader: {(node0,): False}}, {}
        )
        assert not generalizes(flipped, full)


class TestDiagramAndConjecture:
    def test_conjecture_excludes_own_state(self, state):
        partial = from_structure(state).forget("btw")
        phi = conjecture(partial)
        assert not state.satisfies(phi)  # Lemma 4.2 with s' = s

    def test_diagram_holds_in_own_state(self, state):
        partial = from_structure(state).forget("btw")
        assert state.satisfies(diagram(partial))

    def test_smaller_partial_gives_stronger_conjecture(self, ring_vocab, state):
        """phi(s2) => phi(s1) when s2 <= s1 (more states excluded)."""
        from repro.solver import solve_epr
        from repro.logic import and_, not_

        full = from_structure(state).forget("btw")
        smaller = full.forget("pnd").forget("leader", polarity=False)
        result = solve_epr(
            ring_vocab, [and_(conjecture(smaller), not_(conjecture(full)))]
        )
        assert not result.satisfiable

    def test_conjecture_is_universal(self, state):
        from repro.logic import is_universal

        partial = from_structure(state).forget("btw")
        assert is_universal(conjecture(partial))

    def test_conjecture_of_empty_partial(self, ring_vocab, state):
        empty = PartialStructure(ring_vocab, dict(state.universe), {}, {})
        from repro.logic import FALSE, TRUE

        assert diagram(empty) == TRUE
        assert conjecture(empty) == FALSE

    def test_paper_c1_shape(self, ring_vocab, state):
        """Keeping only {leader+, le+, idn} facts yields a conjecture
        equivalent (under the axioms) to the paper's C1."""
        partial = from_structure(state)
        facts = [
            f
            for f in partial.facts()
            if (f.symbol.name == "leader" and f.positive and f.args[0].name == "node0")
            or (f.symbol.name == "le" and f.positive and f.args[0].name != f.args[1].name)
            or (f.symbol.name == "idn" and f.positive)
        ]
        kept = partial.keep_facts(facts)
        phi = conjecture(kept)
        # The state itself is excluded:
        assert not state.satisfies(phi)


class TestEmbedding:
    def test_embedding_exists(self, state):
        partial = from_structure(state).forget("btw").forget("pnd")
        assert embeds_into(partial, state) is not None

    def test_embedding_respects_negative_facts(self, ring_vocab, state):
        leader = ring_vocab.relation("leader")
        node = ring_vocab.sorts[0]
        node0, node1 = state.universe[node]
        # Require two distinct leaders: no embedding into a 1-leader state.
        partial = PartialStructure(
            ring_vocab,
            dict(state.universe),
            {leader: {(node0,): True, (node1,): True}},
            {},
        )
        assert embeds_into(partial, state) is None

    def test_embedding_agrees_with_conjecture(self, ring_vocab, state):
        """t |= phi(s) iff s does not embed into t -- on a few slices."""
        full = from_structure(state)
        slices = [
            full.forget("btw"),
            full.forget("btw").forget("pnd"),
            full.forget("btw").forget("le").forget("idn"),
        ]
        for partial in slices:
            phi = conjecture(partial)
            assert state.satisfies(phi) == (embeds_into(partial, state) is None)
