"""Finite structures and formula evaluation (Definition 1)."""

import pytest

from repro.logic import (
    Elem,
    EvaluationError,
    Structure,
    all_structures,
    make_structure,
    parse_formula,
    parse_term,
)


@pytest.fixture()
def two_node_ring(ring_vocab):
    """The Figure 7 (a1) state: two nodes, two ids, node0 leads."""
    node0 = Elem("node0", ring_vocab.sorts[0])
    node1 = Elem("node1", ring_vocab.sorts[0])
    id0 = Elem("id0", ring_vocab.sorts[1])
    id1 = Elem("id1", ring_vocab.sorts[1])
    return make_structure(
        ring_vocab,
        universe={ring_vocab.sorts[0]: [node0, node1], ring_vocab.sorts[1]: [id0, id1]},
        rels={
            "le": [(id0, id0), (id0, id1), (id1, id1)],
            "leader": [(node0,)],
            "pnd": [(id1, node1)],
        },
        funcs={"idn": {(node0,): id0, (node1,): id1}},
    )


class TestConstruction:
    def test_make_structure_from_sizes(self, ring_vocab):
        node, ident = ring_vocab.sorts
        structure = make_structure(
            ring_vocab,
            universe={node: 2, ident: 2},
            funcs={
                "idn": {
                    (Elem("node0", node),): Elem("id0", ident),
                    (Elem("node1", node),): Elem("id1", ident),
                }
            },
        )
        assert structure.sort_size(node) == 2
        assert structure.positive_count(ring_vocab.relation("leader")) == 0

    def test_empty_domain_rejected(self, ring_vocab):
        node, ident = ring_vocab.sorts
        with pytest.raises(EvaluationError, match="empty"):
            make_structure(ring_vocab, universe={node: 0, ident: 1}, funcs={"idn": {}})

    def test_partial_function_rejected(self, ring_vocab):
        node, ident = ring_vocab.sorts
        with pytest.raises(EvaluationError, match="undefined"):
            make_structure(ring_vocab, universe={node: 2, ident: 1}, funcs={"idn": {}})

    def test_ill_sorted_tuple_rejected(self, ring_vocab):
        node, ident = ring_vocab.sorts
        id0 = Elem("id0", ident)
        with pytest.raises(EvaluationError):
            make_structure(
                ring_vocab,
                universe={node: 1, ident: 1},
                rels={"leader": [(id0,)]},  # wrong sort
                funcs={"idn": {(Elem("node0", node),): id0}},
            )


class TestEvaluation:
    def test_atoms(self, ring_vocab, two_node_ring):
        assert two_node_ring.satisfies(parse_formula("exists N. leader(N)", ring_vocab))
        assert not two_node_ring.satisfies(
            parse_formula("forall N:node. leader(N)", ring_vocab)
        )

    def test_function_application(self, ring_vocab, two_node_ring):
        f = parse_formula("forall N1, N2. N1 ~= N2 -> idn(N1) ~= idn(N2)", ring_vocab)
        assert two_node_ring.satisfies(f)

    def test_nested_quantifiers(self, ring_vocab, two_node_ring):
        f = parse_formula("exists X:id. forall Y:id. le(X, Y)", ring_vocab)
        assert two_node_ring.satisfies(f)
        g = parse_formula("forall X:id. exists Y:id. le(X, Y) & X ~= Y", ring_vocab)
        assert not two_node_ring.satisfies(g)

    def test_paper_conjecture_c1_fails_here(self, ring_vocab, two_node_ring):
        """The Fig. 7 CTI state violates C1 (leader with non-max id)...
        actually node0 has the *lower* id and leads, so C1 is violated."""
        c1 = parse_formula(
            "forall N1, N2. ~(N1 ~= N2 & leader(N1) & le(idn(N1), idn(N2)))",
            ring_vocab,
        )
        assert not two_node_ring.satisfies(c1)

    def test_eval_term(self, ring_vocab, two_node_ring):
        term = parse_term("idn(n)", ring_vocab.extended(
            functions=[]
        )) if False else None
        # evaluate through an assignment instead of program constants
        from repro.logic import Var, App

        node = ring_vocab.sorts[0]
        var = Var("N", node)
        term = App(ring_vocab.function("idn"), (var,))
        node0 = two_node_ring.universe[node][0]
        value = two_node_ring.eval_term(term, {var: node0})
        assert value.name == "id0"

    def test_unbound_variable_raises(self, ring_vocab, two_node_ring):
        from repro.logic import Rel, Var

        node = ring_vocab.sorts[0]
        atom = Rel(ring_vocab.relation("leader"), (Var("N", node),))
        with pytest.raises(EvaluationError, match="unbound"):
            two_node_ring.eval_formula(atom, {})

    def test_ite_term(self, ring_vocab, two_node_ring):
        from repro.logic import App, Ite, Rel, Var

        node, ident = ring_vocab.sorts
        var = Var("N", node)
        idn = ring_vocab.function("idn")
        node0, node1 = two_node_ring.universe[node]
        term = Ite(
            Rel(ring_vocab.relation("leader"), (var,)),
            App(idn, (var,)),
            App(idn, (var,)),
        )
        assert two_node_ring.eval_term(term, {var: node0}).name == "id0"


class TestModification:
    def test_with_rel(self, ring_vocab, two_node_ring):
        leader = ring_vocab.relation("leader")
        node = ring_vocab.sorts[0]
        both = two_node_ring.with_rel(
            leader, {(elem,) for elem in two_node_ring.universe[node]}
        )
        assert both.positive_count(leader) == 2
        assert two_node_ring.positive_count(leader) == 1  # original unchanged

    def test_with_func(self, ring_vocab, two_node_ring):
        idn = ring_vocab.function("idn")
        node, ident = ring_vocab.sorts
        node0, node1 = two_node_ring.universe[node]
        id0, id1 = two_node_ring.universe[ident]
        swapped = two_node_ring.with_func(idn, {(node0,): id1, (node1,): id0})
        assert swapped.func_value(idn, (node0,)) == id1

    def test_counts(self, ring_vocab, two_node_ring):
        pnd = ring_vocab.relation("pnd")
        assert two_node_ring.positive_count(pnd) == 1
        assert two_node_ring.negative_count(pnd) == 3  # 2x2 - 1


class TestEnumeration:
    def test_all_structures_count(self, tiny_vocab):
        elem = tiny_vocab.sorts[0]
        # size 1: p has 2 options, r has 2, c has 1 -> 4 structures
        structures = list(all_structures(tiny_vocab, {elem: 1}))
        assert len(structures) == 4

    def test_all_structures_distinct_and_valid(self, tiny_vocab):
        elem = tiny_vocab.sorts[0]
        structures = list(all_structures(tiny_vocab, {elem: 2}, max_count=50))
        assert len(structures) == 50
        f = parse_formula("forall X. p(X) | ~p(X)", tiny_vocab)
        assert all(s.satisfies(f) for s in structures)
