"""Term/formula ASTs, smart constructors and traversal helpers."""

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    And,
    App,
    Eq,
    Exists,
    Forall,
    FuncDecl,
    Implies,
    Ite,
    Not,
    Or,
    Rel,
    RelDecl,
    Sort,
    Var,
    and_,
    constant,
    distinct,
    eq,
    exists,
    forall,
    free_vars,
    iff,
    implies,
    is_closed,
    not_,
    or_,
    symbols_of,
)

node = Sort("node")
ident = Sort("id")
leader = RelDecl("leader", (node,))
le = RelDecl("le", (ident, ident))
idn = FuncDecl("idn", (node,), ident)
n_const = FuncDecl("n", (), node)

X = Var("X", node)
Y = Var("Y", node)
I = Var("I", ident)


class TestTermConstruction:
    def test_app_sort(self):
        assert App(idn, (X,)).sort == ident
        assert App(n_const, ()).sort == node

    def test_app_arity_checked(self):
        with pytest.raises(ValueError):
            App(idn, ())
        with pytest.raises(ValueError):
            App(n_const, (X,))

    def test_constant_helper(self):
        assert constant(n_const) == App(n_const, ())
        with pytest.raises(ValueError):
            constant(idn)

    def test_ite_sorts_checked(self):
        good = Ite(Rel(leader, (X,)), App(idn, (X,)), I)
        assert good.sort == ident
        with pytest.raises(ValueError):
            Ite(Rel(leader, (X,)), X, I)  # node vs id branches

    def test_structural_equality_and_hash(self):
        a = Rel(leader, (X,))
        b = Rel(leader, (Var("X", node),))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Rel(leader, (Y,))


class TestFormulaConstruction:
    def test_rel_arity_checked(self):
        with pytest.raises(ValueError):
            Rel(leader, (X, Y))

    def test_eq_sorts_checked(self):
        with pytest.raises(ValueError):
            Eq(X, I)

    def test_quantifier_needs_vars(self):
        with pytest.raises(ValueError):
            Forall((), Rel(leader, (X,)))


class TestSmartConstructors:
    def test_and_flattens(self):
        p, q, r = Rel(leader, (X,)), Rel(leader, (Y,)), Eq(X, Y)
        assert and_(p, and_(q, r)) == And((p, q, r))

    def test_and_units(self):
        p = Rel(leader, (X,))
        assert and_() == TRUE
        assert and_(p) == p
        assert and_(p, FALSE) == FALSE
        assert and_(TRUE, p) == And((p,)) or and_(TRUE, p) == p

    def test_or_units(self):
        p = Rel(leader, (X,))
        assert or_() == FALSE
        assert or_(p) == p
        assert or_(p, TRUE) == TRUE

    def test_not_involution(self):
        p = Rel(leader, (X,))
        assert not_(not_(p)) == p
        assert not_(TRUE) == FALSE
        assert not_(FALSE) == TRUE

    def test_implies_simplifications(self):
        p = Rel(leader, (X,))
        assert implies(TRUE, p) == p
        assert implies(FALSE, p) == TRUE
        assert implies(p, TRUE) == TRUE
        assert implies(p, FALSE) == not_(p)

    def test_iff_simplifications(self):
        p = Rel(leader, (X,))
        assert iff(p, p) == TRUE
        assert iff(TRUE, p) == p
        assert iff(p, FALSE) == not_(p)

    def test_eq_reflexive(self):
        assert eq(X, X) == TRUE
        assert eq(X, Y) == Eq(X, Y)

    def test_forall_merges_nested(self):
        body = Rel(leader, (X,))
        assert forall((Y,), forall((X,), body)) == Forall((Y, X), body)
        assert forall((), body) == body

    def test_exists_merges_nested(self):
        body = Rel(leader, (X,))
        assert exists((Y,), exists((X,), body)) == Exists((Y, X), body)

    def test_distinct(self):
        d = distinct(X, Y)
        assert d == not_(eq(X, Y))
        z = Var("Z", node)
        three = distinct(X, Y, z)
        assert isinstance(three, And) and len(three.args) == 3

    def test_distinct_single(self):
        assert distinct(X) == TRUE


class TestTraversal:
    def test_free_vars(self):
        f = forall((X,), or_(Rel(leader, (X,)), eq(App(idn, (X,)), I)))
        assert free_vars(f) == frozenset({I})
        assert not is_closed(f)
        assert is_closed(forall((X,), Rel(leader, (X,))))

    def test_free_vars_through_ite(self):
        term = Ite(Rel(leader, (X,)), App(idn, (Y,)), I)
        assert free_vars(term) == frozenset({X, Y, I})

    def test_symbols_of(self):
        f = forall((X, Y), implies(Rel(leader, (X,)), eq(App(idn, (X,)), App(idn, (Y,)))))
        assert symbols_of(f) == frozenset({leader, idn})

    def test_symbols_of_term(self):
        assert symbols_of(App(idn, (App(n_const, ()),))) == frozenset({idn, n_const})
