"""The concrete-syntax parser, sort inference, and printer round-trips."""

import pytest

from repro.logic import (
    And,
    App,
    Eq,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Rel,
    Sort,
    Var,
    free_vars,
    parse_formula,
    parse_term,
)
from repro.logic.lexer import LexError, ParseError, tokenize

node = Sort("node")
ident = Sort("id")


class TestLexer:
    def test_tokens(self):
        kinds = [(t.kind, t.text) for t in tokenize("forall X. p(X) -> X ~= c")]
        assert kinds == [
            ("ident", "forall"),
            ("ident", "X"),
            ("punct", "."),
            ("ident", "p"),
            ("punct", "("),
            ("ident", "X"),
            ("punct", ")"),
            ("punct", "->"),
            ("ident", "X"),
            ("punct", "~="),
            ("ident", "c"),
            ("eof", ""),
        ]

    def test_comments_and_positions(self):
        tokens = tokenize("a # comment\n b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]
        assert tokens[1].line == 2

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("p(x) $ q(x)")


class TestParsing:
    def test_quantifier_and_precedence(self, ring_vocab):
        f = parse_formula("forall N1, N2. leader(N1) & leader(N2) -> N1 = N2", ring_vocab)
        assert isinstance(f, Forall)
        assert isinstance(f.body, Implies)
        assert isinstance(f.body.lhs, And)

    def test_or_binds_looser_than_and(self, ring_vocab):
        f = parse_formula("leader(N) | leader(N) & leader(N)", ring_vocab, free={"N": node})
        assert isinstance(f, Or)

    def test_implies_right_associative(self, ring_vocab):
        f = parse_formula(
            "leader(N) -> leader(N) -> leader(N)", ring_vocab, free={"N": node}
        )
        assert isinstance(f, Implies)
        assert isinstance(f.rhs, Implies)

    def test_negated_equality(self, ring_vocab):
        f = parse_formula("N1 ~= N2", ring_vocab, free={"N1": node, "N2": node})
        assert isinstance(f, Not) and isinstance(f.arg, Eq)

    def test_nullary_relation(self):
        from repro.logic import RelDecl, vocabulary

        vocab = vocabulary(sorts=[node], relations=[RelDecl("flag", ())])
        f = parse_formula("flag & ~flag", vocab)
        assert isinstance(f, And)

    def test_parse_term_with_ite(self, ring_vocab):
        t = parse_term("ite(leader(N), idn(N), idn(M))", ring_vocab, free={"N": node, "M": node})
        assert t.sort == ident

    def test_true_false(self, ring_vocab):
        from repro.logic import FALSE, TRUE

        assert parse_formula("true", ring_vocab) == TRUE
        assert parse_formula("false", ring_vocab) == FALSE


class TestSortInference:
    def test_inferred_from_relation_position(self, ring_vocab):
        f = parse_formula("forall X, Y. le(X, Y)", ring_vocab)
        assert all(v.sort == ident for v in f.vars)

    def test_inferred_through_function(self, ring_vocab):
        f = parse_formula("forall N. le(idn(N), idn(N))", ring_vocab)
        assert f.vars[0].sort == node

    def test_annotation_respected(self, ring_vocab):
        f = parse_formula("forall X:id. le(X, X)", ring_vocab)
        assert f.vars[0].sort == ident

    def test_equality_unifies_unknowns(self, ring_vocab):
        f = parse_formula("forall X, Y. X = Y -> le(X, Y)", ring_vocab)
        assert all(v.sort == ident for v in f.vars)

    def test_conflicting_sorts_rejected(self, ring_vocab):
        with pytest.raises(ParseError, match="sort"):
            parse_formula("forall X. leader(X) & le(X, X)", ring_vocab)

    def test_uninferable_sort_rejected(self, ring_vocab):
        with pytest.raises(ParseError):
            parse_formula("forall X, Y. X = Y", ring_vocab)

    def test_free_variable_sorts_supplied(self, ring_vocab):
        f = parse_formula("pnd(I, N)", ring_vocab, free={"I": ident, "N": node})
        assert free_vars(f) == frozenset({Var("I", ident), Var("N", node)})

    def test_free_variable_sort_inferred(self, ring_vocab):
        f = parse_formula("leader(N)", ring_vocab)
        assert free_vars(f) == frozenset({Var("N", node)})

    def test_annotation_unknown_sort(self, ring_vocab):
        with pytest.raises(ParseError, match="unknown sort"):
            parse_formula("forall X:color. le(X, X)", ring_vocab)


class TestParseErrors:
    def test_unknown_relation(self, ring_vocab):
        with pytest.raises(ParseError):
            parse_formula("unknown_rel(N1)", ring_vocab)

    def test_arity_mismatch(self, ring_vocab):
        with pytest.raises(ParseError, match="arguments"):
            parse_formula("le(X)", ring_vocab)

    def test_relation_as_term(self, ring_vocab):
        with pytest.raises(ParseError):
            parse_formula("idn(leader(N)) = idn(N)", ring_vocab)

    def test_function_as_formula(self, ring_vocab):
        with pytest.raises(ParseError):
            parse_formula("idn(N)", ring_vocab)

    def test_trailing_input(self, ring_vocab):
        with pytest.raises(ParseError, match="trailing"):
            parse_formula("leader(N) leader(N)", ring_vocab)

    def test_shadowing_declared_symbol(self, ring_vocab):
        with pytest.raises(ParseError, match="shadows"):
            parse_formula("forall le. leader(le)", ring_vocab)


class TestRoundTrip:
    CASES = [
        "forall N1, N2. ~(leader(N1) & leader(N2) & N1 ~= N2)",
        "forall N1, N2. ~(N1 ~= N2 & pnd(idn(N1), N1) & le(idn(N1), idn(N2)))",
        "exists X:id. forall Y:id. le(X, Y)",
        "(forall X:id. le(X, X)) & (forall X, Y:id. le(X, Y) | le(Y, X))",
        "forall W, X, Y. btw(W, X, Y) -> ~btw(W, Y, X)",
        "leader(N) <-> ~leader(N)",
        "true",
        "false",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_print_parse_round_trip(self, ring_vocab, source):
        first = parse_formula(source, ring_vocab, free={"N": node})
        second = parse_formula(str(first), ring_vocab, free={"N": node})
        assert first == second


class TestErrorPositions:
    def test_parse_error_cites_line_and_column(self, ring_vocab):
        with pytest.raises(ParseError) as excinfo:
            parse_formula("leader(N) &\n  unknown_rel(N1)", ring_vocab)
        error = excinfo.value
        assert "(line 2, column 3)" in str(error)
        assert error.span is not None
        assert (error.span.line, error.span.col) == (2, 3)
        assert error.bare_message and "line" not in error.bare_message

    def test_lex_error_cites_position(self, ring_vocab):
        with pytest.raises(LexError) as excinfo:
            parse_formula("leader(N) @ N", ring_vocab)
        error = excinfo.value
        assert "(line 1, column 11)" in str(error)
        assert (error.line, error.col) == (1, 11)
