"""NNF, ite-elimination, prenexing, skolemization, fragment checks."""

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    And,
    App,
    Eq,
    Exists,
    Forall,
    FreshNames,
    FuncDecl,
    Ite,
    Not,
    Or,
    Rel,
    RelDecl,
    Sort,
    Var,
    and_,
    eliminate_ite,
    exists,
    forall,
    iff,
    implies,
    is_alternation_free,
    is_exists_forall,
    is_forall_exists,
    is_quantifier_free,
    is_universal,
    nnf,
    not_,
    or_,
    parse_formula,
    prenex,
    skolemize_ea,
    vocabulary,
)
from repro.logic.structures import all_structures
from repro.logic.transform import NotInFragment

elem = Sort("elem")
p = RelDecl("p", (elem,))
r = RelDecl("r", (elem, elem))
f = FuncDecl("f", (), elem)
X, Y, Z = Var("X", elem), Var("Y", elem), Var("Z", elem)
VOCAB = vocabulary(sorts=[elem], relations=[p, r], functions=[f])


def _px(v=X):
    return Rel(p, (v,))


def _equivalent(a, b, sizes=(1, 2)) -> bool:
    """Semantic equivalence of closed formulas checked by enumeration."""
    for size in sizes:
        for structure in all_structures(VOCAB, {elem: size}):
            if structure.satisfies(a) != structure.satisfies(b):
                return False
    return True


class TestNnf:
    def test_atoms_untouched(self):
        assert nnf(_px()) == _px()
        assert nnf(not_(_px())) == not_(_px())

    def test_demorgan(self):
        g = not_(and_(_px(X), _px(Y)))
        assert nnf(g) == or_(not_(_px(X)), not_(_px(Y)))

    def test_implication_expanded(self):
        g = implies(_px(X), _px(Y))
        assert nnf(g) == or_(not_(_px(X)), _px(Y))

    def test_negated_quantifiers_flip(self):
        g = not_(forall((X,), _px(X)))
        assert nnf(g) == exists((X,), not_(_px(X)))
        g = not_(exists((X,), _px(X)))
        assert nnf(g) == forall((X,), not_(_px(X)))

    def test_iff_expansion_preserves_semantics(self):
        g = forall((X, Y), iff(Rel(r, (X, Y)), _px(X)))
        assert _equivalent(g, nnf(g))

    def test_no_negation_above_literals(self):
        g = not_(implies(and_(_px(X), not_(_px(Y))), or_(_px(Z), _px(X))))
        result = nnf(forall((X, Y, Z), g))

        def check(formula):
            if isinstance(formula, Not):
                assert isinstance(formula.arg, (Rel, Eq))
                return
            for attr in ("args",):
                for child in getattr(formula, attr, ()):
                    check(child)
            if isinstance(formula, (Forall, Exists)):
                check(formula.body)

        check(result)


class TestEliminateIte:
    def test_simple_split(self):
        term = Ite(_px(X), X, Y)
        atom = Rel(p, (term,))
        result = eliminate_ite(atom)
        expected_then = and_(_px(X), _px(X))
        assert isinstance(result, Or)
        assert _equivalent(
            forall((X, Y), result), forall((X, Y), or_(and_(_px(X), _px(X)), and_(not_(_px(X)), _px(Y))))
        )

    def test_nested_ite(self):
        inner = Ite(_px(X), X, Y)
        outer = Ite(_px(Y), inner, Z)
        atom = Rel(p, (outer,))
        result = eliminate_ite(atom)
        closed = forall((X, Y, Z), result)
        # Semantics: p(ite(p(Y), ite(p(X), X, Y), Z))
        reference = forall(
            (X, Y, Z),
            or_(
                and_(_px(Y), or_(and_(_px(X), _px(X)), and_(not_(_px(X)), _px(Y)))),
                and_(not_(_px(Y)), _px(Z)),
            ),
        )
        assert _equivalent(closed, reference)

    def test_ite_free_unchanged(self):
        g = forall((X,), implies(_px(X), _px(X)))
        assert eliminate_ite(g) == g

    def test_ite_in_equality(self):
        term = Ite(_px(X), App(f, ()), X)
        atom = Eq(term, X)
        result = eliminate_ite(atom)
        assert _equivalent(
            forall((X,), result),
            forall((X,), or_(and_(_px(X), Eq(App(f, ()), X)), and_(not_(_px(X)), TRUE))),
        )


class TestPrenex:
    def test_already_prenex(self):
        g = forall((X,), _px(X))
        result = prenex(g)
        assert result.collapsed() == "A"
        assert is_quantifier_free(result.matrix)

    def test_merge_prefers_exists(self):
        g = and_(exists((X,), _px(X)), forall((Y,), _px(Y)))
        assert prenex(g, prefer="E").collapsed() == "EA"

    def test_cannot_reorder_nested(self):
        g = forall((X,), exists((Y,), Rel(r, (X, Y))))
        assert prenex(g, prefer="E").collapsed() == "AE"

    def test_renames_apart(self):
        g = and_(forall((X,), _px(X)), forall((X,), not_(_px(X))))
        result = prenex(g)
        names = [v.name for _, v in result.prefix]
        assert len(set(names)) == len(names) == 2

    def test_roundtrip_semantics(self):
        g = and_(
            exists((X,), _px(X)),
            forall((Y,), or_(_px(Y), exists((Z,), Rel(r, (Y, Z))))),
        )
        result = prenex(g)
        assert _equivalent(g, result.to_formula())


class TestFragments:
    def test_qf(self, ring_vocab):
        g = parse_formula("leader(N) & ~leader(N)", ring_vocab)
        assert is_quantifier_free(g)
        assert is_alternation_free(g)

    def test_universal(self, ring_vocab):
        g = parse_formula("forall N1, N2. leader(N1) -> N1 = N2", ring_vocab)
        assert is_universal(g)
        assert is_exists_forall(g)
        assert is_forall_exists(g)

    def test_ea_not_ae(self, ring_vocab):
        g = parse_formula("exists X:id. forall Y:id. le(X, Y)", ring_vocab)
        assert is_exists_forall(g)
        assert not is_forall_exists(g)
        assert not is_universal(g)

    def test_ae_not_ea(self, ring_vocab):
        g = parse_formula("forall X:id. exists Y:id. le(X, Y)", ring_vocab)
        assert is_forall_exists(g)
        assert not is_exists_forall(g)

    def test_conjunction_of_ea_is_ea(self, ring_vocab):
        g = parse_formula(
            "(exists X:id. forall Y:id. le(X, Y)) & (forall Z:id. le(Z, Z))",
            ring_vocab,
        )
        assert is_exists_forall(g)

    def test_alternation_free(self, ring_vocab):
        g = parse_formula(
            "(forall N:node. leader(N)) | (exists N:node. ~leader(N))", ring_vocab
        )
        assert is_alternation_free(g)
        nested = parse_formula("forall X:id. exists Y:id. le(X, Y)", ring_vocab)
        assert not is_alternation_free(nested)


class TestSkolemize:
    def test_simple(self):
        g = exists((X,), forall((Y,), Rel(r, (X, Y))))
        result = skolemize_ea(g, FreshNames())
        assert len(result.constants) == 1
        const = result.constants[0]
        assert const.sort == elem and const.is_constant
        assert isinstance(result.universal, Forall)

    def test_pure_universal_unchanged_shape(self):
        g = forall((X,), _px(X))
        result = skolemize_ea(g, FreshNames())
        assert result.constants == ()
        assert isinstance(result.universal, Forall)

    def test_rejects_ae(self):
        g = forall((X,), exists((Y,), Rel(r, (X, Y))))
        with pytest.raises(NotInFragment):
            skolemize_ea(g, FreshNames())

    def test_rejects_open_formula(self):
        with pytest.raises(ValueError):
            skolemize_ea(_px(X), FreshNames())

    def test_equisatisfiable(self):
        from repro.solver import solve_epr

        g = exists((X, Y), and_(_px(X), not_(_px(Y))))
        result = solve_epr(VOCAB, [g])
        assert result.satisfiable
        assert result.model.satisfies(g)


class TestPrenexPolarityDifferential:
    """Differential tests for prenex polarity handling (Iff/Implies with
    quantified operands), checked against truth-table evaluation on all
    small structures.  Both fragment checks and ``is_alternation_free``
    lean on prenex getting these right."""

    QUANT_OPERANDS = [
        forall((X,), _px(X)),
        exists((X,), _px(X)),
        forall((X,), exists((Y,), Rel(r, (X, Y)))),
        exists((X,), forall((Y,), Rel(r, (X, Y)))),
        not_(forall((X,), _px(X))),
        and_(exists((X,), _px(X)), forall((Y,), _px(Y))),
    ]

    @pytest.mark.parametrize("prefer", ["E", "A"])
    @pytest.mark.parametrize("lhs_index", range(6))
    @pytest.mark.parametrize("rhs_index", range(6))
    def test_implies_quantified_operands(self, prefer, lhs_index, rhs_index):
        formula = implies(
            self.QUANT_OPERANDS[lhs_index], self.QUANT_OPERANDS[rhs_index]
        )
        assert _equivalent(formula, prenex(formula, prefer=prefer).to_formula())

    @pytest.mark.parametrize("prefer", ["E", "A"])
    @pytest.mark.parametrize("lhs_index", range(6))
    @pytest.mark.parametrize("rhs_index", range(6))
    def test_iff_quantified_operands(self, prefer, lhs_index, rhs_index):
        formula = iff(
            self.QUANT_OPERANDS[lhs_index], self.QUANT_OPERANDS[rhs_index]
        )
        assert _equivalent(formula, prenex(formula, prefer=prefer).to_formula())

    @pytest.mark.parametrize("prefer", ["E", "A"])
    def test_nested_iff_under_implies(self, prefer):
        inner = iff(forall((X,), _px(X)), exists((Y,), _px(Y)))
        formula = implies(inner, exists((Z,), _px(Z)))
        assert _equivalent(formula, prenex(formula, prefer=prefer).to_formula())

    @pytest.mark.parametrize("prefer", ["E", "A"])
    def test_negated_iff(self, prefer):
        formula = not_(iff(forall((X,), _px(X)), exists((Y,), _px(Y))))
        assert _equivalent(formula, prenex(formula, prefer=prefer).to_formula())


class TestFragmentClosednessContract:
    """is_exists_forall / is_forall_exists reject open formulas loudly."""

    def test_ea_rejects_open_formula(self):
        with pytest.raises(ValueError, match="closed"):
            is_exists_forall(_px(X))

    def test_ae_rejects_open_formula(self):
        with pytest.raises(ValueError, match="closed"):
            is_forall_exists(Rel(r, (X, Y)))

    def test_error_names_free_variables(self):
        with pytest.raises(ValueError, match="X"):
            is_exists_forall(forall((Y,), Rel(r, (X, Y))))

    def test_closed_formulas_still_classify(self):
        assert is_exists_forall(exists((X,), forall((Y,), Rel(r, (X, Y)))))
        assert is_forall_exists(forall((X,), exists((Y,), Rel(r, (X, Y)))))
