"""The shared sharded store: atomicity, healing, retries, concurrency.

The two-process stress tests are the multi-process-safety contract for
the stores built on :class:`~repro.store.ShardedStore` (the disk cache
and the proven-lemma ledger): two runs hammering one shared directory
must lose no entries, corrupt nothing, and converge to byte-identical
final contents.
"""

import errno
import hashlib
import json
import os
import pickle
import subprocess
import sys
import textwrap

import pytest

import repro
from repro import obs
from repro.proof.ledger import Ledger, LedgerEntry, ledger_key
from repro.solver.cache import DISK_FORMAT, DiskCache
from repro.solver.epr import EprResult
from repro.store import (
    RETRY_ATTEMPTS,
    ShardedStore,
    is_transient,
    with_retry,
)

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class TestShardedStore:
    def test_write_read_roundtrip(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), ".bin")
        digest = _digest("hello")
        assert store.write(digest, b"payload")
        assert store.read(digest) == b"payload"
        assert store.path_of(digest).endswith(
            os.path.join(digest[:2], digest + ".bin")
        )

    def test_missing_entry_is_none(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), ".bin")
        assert store.read(_digest("nope")) is None

    def test_no_temp_files_survive_a_write(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), ".bin")
        digest = _digest("x")
        store.write(digest, b"data")
        shard = os.path.dirname(store.path_of(digest))
        assert [n for n in os.listdir(shard) if n.endswith(".tmp")] == []

    def test_heal_removes_bad_entry_and_warns_once(self, tmp_path, caplog):
        store = ShardedStore(str(tmp_path / "s"), ".bin")
        bad = _digest("bad")
        store.write(bad, b"garbage")
        with caplog.at_level("WARNING", logger="repro.store"):
            assert store.heal(bad, lambda raw: False, "is corrupt") is None
            assert store.heal(bad, lambda raw: False, "is corrupt") is None
        assert store.read(bad) is None
        warnings = [r for r in caplog.records if "is corrupt" in r.message]
        assert len(warnings) == 1  # warn-once per (store, reason)

    def test_heal_keeps_a_concurrently_repaired_entry(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), ".bin")
        digest = _digest("fixed")
        store.write(digest, b"now-valid")
        healed = store.heal(digest, lambda raw: raw == b"now-valid", "bad")
        assert healed == b"now-valid"
        assert store.read(digest) == b"now-valid"

    def test_digests_inventory(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), ".bin")
        wanted = {_digest(str(i)) for i in range(5)}
        for digest in wanted:
            store.write(digest, b"x")
        assert set(store.digests()) == wanted
        assert len(store) == 5


class TestWithRetry:
    def test_transient_error_is_retried(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError(errno.EAGAIN, "try again")

        registry = obs.MetricsRegistry()
        old = obs.install_metrics(registry)
        try:
            with_retry(flaky, "test-op", base=0.001)
        finally:
            obs.install_metrics(old)
        assert len(calls) == 3
        counters = registry.to_dict()["counters"]
        assert counters.get("store_retries_total") == 2

    def test_non_transient_error_propagates_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise OSError(errno.EACCES, "denied")

        with pytest.raises(OSError):
            with_retry(broken, "test-op", base=0.001)
        assert len(calls) == 1

    def test_final_transient_failure_propagates(self):
        def hopeless():
            raise OSError(errno.EAGAIN, "forever")

        with pytest.raises(OSError):
            with_retry(hopeless, "test-op", base=0.001)

    def test_is_transient(self):
        assert is_transient(OSError(errno.EAGAIN, ""))
        assert is_transient(OSError(errno.ENOSPC, ""))
        assert not is_transient(OSError(errno.EACCES, ""))
        assert RETRY_ATTEMPTS >= 2


def _fixed_entry(index: int) -> LedgerEntry:
    """A deterministic ledger entry: both stress processes write the
    exact same bytes for the same key, so the final store contents are
    byte-comparable."""
    return LedgerEntry(
        program="stress",
        invariant=f"C{index}",
        kind="consecution",
        program_hash=_digest("prog"),
        obligation_hash=_digest(f"ob{index}"),
        lemma_hash=_digest("lemmas"),
        engine="stress",
        budget=None,
        git_rev=None,
        run_id=None,
        wall_ms=1.0,
        created_unix=1_700_000_000.0,
    )


_STRESS_SCRIPT = textwrap.dedent(
    """
    import pickle, sys
    from repro.proof.ledger import Ledger
    from repro.solver.cache import DiskCache

    cache_dir, ledger_dir, blob = sys.argv[1], sys.argv[2], sys.argv[3]
    entries, results = pickle.loads(open(blob, "rb").read())
    cache = DiskCache(cache_dir)
    ledger = Ledger(ledger_dir)
    for _ in range(8):  # rewrite loop: maximize replace/read interleaving
        for key, result in results:
            cache.store(key, result)
            assert cache.lookup(key) is not None
        for entry in entries:
            ledger.record(entry)
            assert ledger.proven(entry.key) is not None
    print("ok")
    """
)


class TestTwoProcessStress:
    def test_shared_cache_and_ledger_survive_concurrent_writers(
        self, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        ledger_dir = str(tmp_path / "ledger")
        entries = [_fixed_entry(i) for i in range(24)]
        results = [
            (("stress-key", i), EprResult(False, statistics={"i": i}))
            for i in range(24)
        ]
        blob = tmp_path / "work.pkl"
        blob.write_bytes(pickle.dumps((entries, results)))

        env = dict(os.environ, PYTHONPATH=SRC)
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", _STRESS_SCRIPT, cache_dir,
                 ledger_dir, str(blob)],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        for worker in workers:
            out, err = worker.communicate(timeout=240)
            assert worker.returncode == 0, err
            assert out.strip() == "ok"

        # no lost entries, nothing corrupt
        cache = DiskCache(cache_dir)
        for key, expected in results:
            found = cache.lookup(key)
            assert found is not None
            assert found.statistics == expected.statistics
        ledger = Ledger(ledger_dir)
        for entry in entries:
            assert ledger.proven(entry.key) == entry

        # byte-identical final contents: every file equals the one
        # serialization both processes were writing
        for key, result in results:
            digest = hashlib.sha256(repr(key).encode()).hexdigest()
            path = os.path.join(cache_dir, digest[:2], digest + ".pkl")
            assert open(path, "rb").read() == pickle.dumps(
                (DISK_FORMAT, key, result)
            )
        from dataclasses import asdict

        from repro.proof.ledger import LEDGER_FORMAT

        for entry in entries:
            path = os.path.join(
                ledger_dir, entry.key[:2], entry.key + ".json"
            )
            expected = json.dumps(
                {"format": LEDGER_FORMAT, "entry": asdict(entry)},
                indent=1, sort_keys=True,
            ).encode("utf-8")
            assert open(path, "rb").read() == expected

        # no stray temp files or lock litter beyond the lockfiles
        for root in (cache_dir, ledger_dir):
            for dirpath, _dirnames, filenames in os.walk(root):
                for name in filenames:
                    assert not name.endswith(".tmp"), (dirpath, name)

    def test_concurrent_heal_and_rewrite_never_lose_the_entry(
        self, tmp_path
    ):
        """The fcntl-guarded heal path: one process repeatedly rewrites a
        key while another repeatedly corrupts-then-looks-it-up.  Every
        lookup must be either a valid hit or a clean miss -- never a
        crash, and the final state must be the valid entry."""
        cache_dir = str(tmp_path / "cache")
        key = ("contended", 0)
        result = EprResult(False, statistics={"v": 1})
        DiskCache(cache_dir).store(key, result)
        digest = hashlib.sha256(repr(key).encode()).hexdigest()
        path = os.path.join(cache_dir, digest[:2], digest + ".pkl")

        writer_src = textwrap.dedent(
            """
            import pickle, sys
            from repro.solver.cache import DiskCache
            cache = DiskCache(sys.argv[1])
            key = ("contended", 0)
            from repro.solver.epr import EprResult
            result = EprResult(False, statistics={"v": 1})
            for _ in range(300):
                cache.store(key, result)
            print("ok")
            """
        )
        mangler_src = textwrap.dedent(
            """
            import sys
            from repro.solver.cache import DiskCache
            cache = DiskCache(sys.argv[1])
            key = ("contended", 0)
            path = sys.argv[2]
            for _ in range(300):
                try:
                    with open(path, "wb") as handle:
                        handle.write(b"corrupt")
                except OSError:
                    pass
                cache.lookup(key)  # hit or clean miss, never a crash
            print("ok")
            """
        )
        env = dict(os.environ, PYTHONPATH=SRC)
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", src, cache_dir, path],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True,
            )
            for src in (writer_src, mangler_src)
        ]
        for worker in workers:
            out, err = worker.communicate(timeout=240)
            assert worker.returncode == 0, err
            assert out.strip() == "ok"
        # settle: one final rewrite must leave a valid, readable entry
        cache = DiskCache(cache_dir)
        cache.store(key, result)
        found = cache.lookup(key)
        assert found is not None and found.statistics == {"v": 1}
