"""Property-based EPR tests over a stratified-function vocabulary."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.logic import (
    App,
    Eq,
    FuncDecl,
    Not,
    Rel,
    RelDecl,
    Sort,
    Var,
    all_structures,
    and_,
    exists,
    forall,
    not_,
    or_,
    vocabulary,
)
from repro.logic.transform import NotInFragment
from repro.solver import EprSolver
from repro.solver.grounding import GroundingExplosion

node = Sort("node")
ident = Sort("id")
leader = RelDecl("leader", (node,))
le = RelDecl("le", (ident, ident))
idn = FuncDecl("idn", (node,), ident)
VOCAB = vocabulary(sorts=[node, ident], relations=[leader, le], functions=[idn])

N1, N2 = Var("N1", node), Var("N2", node)


@st.composite
def literals(draw):
    """Literals over two node variables and their idn images."""
    n_terms = [N1, N2]
    id_terms = [App(idn, (N1,)), App(idn, (N2,))]
    kind = draw(st.sampled_from(["leader", "le", "eq_node", "eq_id"]))
    if kind == "leader":
        atom = Rel(leader, (draw(st.sampled_from(n_terms)),))
    elif kind == "le":
        atom = Rel(le, (draw(st.sampled_from(id_terms)), draw(st.sampled_from(id_terms))))
    elif kind == "eq_node":
        atom = Eq(N1, N2)
    else:
        atom = Eq(draw(st.sampled_from(id_terms)), draw(st.sampled_from(id_terms)))
    if draw(st.booleans()):
        return not_(atom)
    return atom


@st.composite
def ea_formulas(draw):
    """Closed formulas of the shape exists?/forall? over literal combos."""
    count = draw(st.integers(min_value=1, max_value=3))
    body = and_(*[draw(literals()) for _ in range(count)]) if draw(
        st.booleans()
    ) else or_(*[draw(literals()) for _ in range(count)])
    shape = draw(st.sampled_from(["AA", "EE", "EA", "A", "E"]))
    if shape == "AA":
        return forall((N1, N2), body)
    if shape == "EE":
        return exists((N1, N2), body)
    if shape == "EA":
        return exists((N1,), forall((N2,), body))
    if shape == "A":
        return forall((N1,), body) if N2 not in _frees(body) else forall((N1, N2), body)
    return exists((N1,), body) if N2 not in _frees(body) else exists((N1, N2), body)


def _frees(formula):
    from repro.logic import free_vars

    return free_vars(formula)


def _brute_force(formulas) -> bool:
    conjunction = and_(*formulas)
    for node_size in (1, 2):
        for id_size in (1, 2, 3):
            for structure in all_structures(
                VOCAB, {node: node_size, ident: id_size}, max_count=4096
            ):
                if structure.satisfies(conjunction):
                    return True
    return False


class TestEprSoundAndComplete:
    @given(st.lists(ea_formulas(), min_size=1, max_size=3))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_against_brute_force(self, formulas):
        solver = EprSolver(VOCAB)
        for formula in formulas:
            solver.add(formula)
        try:
            result = solver.check()
        except (NotInFragment, GroundingExplosion):
            return
        if result.satisfiable:
            # Soundness: the extracted model satisfies every constraint.
            for formula in formulas:
                assert result.model.satisfies(formula)
        else:
            # Completeness over the finite-model bound: the constraints here
            # have at most 2+2 existential witnesses per sort, so a model of
            # the brute-force sizes would exist if any model did.
            assert not _brute_force(formulas)

    @given(st.lists(ea_formulas(), min_size=2, max_size=4))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_unsat_cores_are_unsat(self, formulas):
        solver = EprSolver(VOCAB)
        names = []
        for index, formula in enumerate(formulas):
            names.append(solver.add(formula, name=f"f{index}", track=True))
        try:
            result = solver.check()
        except (NotInFragment, GroundingExplosion):
            return
        if result.satisfiable:
            return
        assert result.core <= set(names)
        # The core alone must already be unsatisfiable.
        by_name = dict(zip(names, formulas))
        core_solver = EprSolver(VOCAB)
        for name in result.core:
            core_solver.add(by_name[name])
        assert not core_solver.check().satisfiable
