"""The CDCL SAT solver: differential tests, cores, classic hard instances."""

import itertools
import random

import pytest

from repro.solver.sat import Solver, _luby


def brute_force(num_vars, cnf, assumptions=()):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all((a > 0) == bits[abs(a) - 1] for a in assumptions) and all(
            any((lit > 0) == bits[abs(lit) - 1] for lit in clause) for clause in cnf
        ):
            return True
    return False


def make_solver(num_vars, cnf):
    solver = Solver()
    for _ in range(num_vars):
        solver.new_var()
    solver.add_clauses(cnf)
    return solver


class TestBasics:
    def test_empty_formula_sat(self):
        assert Solver().solve().satisfiable

    def test_unit_propagation(self):
        solver = make_solver(2, [[1], [-1, 2]])
        result = solver.solve()
        assert result.satisfiable
        assert result.model[1] and result.model[2]

    def test_trivial_unsat(self):
        solver = make_solver(1, [[1], [-1]])
        assert not solver.solve().satisfiable

    def test_empty_clause_unsat(self):
        solver = make_solver(1, [[]])
        assert not solver.solve().satisfiable

    def test_tautology_dropped(self):
        solver = make_solver(2, [[1, -1], [2]])
        result = solver.solve()
        assert result.satisfiable and result.model[2]

    def test_duplicate_literals_merged(self):
        solver = make_solver(1, [[1, 1, 1]])
        assert solver.solve().model[1]

    def test_unknown_variable_rejected(self):
        solver = Solver()
        with pytest.raises(ValueError):
            solver.add_clause([1])
        solver.new_var()
        with pytest.raises(ValueError):
            solver.solve([2])

    def test_incremental_reuse(self):
        solver = make_solver(3, [[1, 2]])
        assert solver.solve().satisfiable
        solver.add_clause([-1])
        result = solver.solve()
        assert result.satisfiable and result.model[2]
        solver.add_clause([-2])
        assert not solver.solve().satisfiable
        # Solver stays unsat once a contradiction is added.
        assert not solver.solve().satisfiable


class TestRandomDifferential:
    @pytest.mark.parametrize("seed", range(8))
    def test_against_brute_force(self, seed):
        rng = random.Random(seed)
        for _ in range(60):
            num_vars = rng.randint(1, 8)
            num_clauses = rng.randint(1, 32)
            cnf = [
                [
                    rng.choice([1, -1]) * rng.randint(1, num_vars)
                    for _ in range(rng.randint(1, 3))
                ]
                for _ in range(num_clauses)
            ]
            solver = make_solver(num_vars, cnf)
            result = solver.solve()
            assert result.satisfiable == brute_force(num_vars, cnf)
            if result.satisfiable:
                assert all(
                    any((lit > 0) == result.model[abs(lit)] for lit in clause)
                    for clause in cnf
                )


class TestAssumptions:
    def test_failed_assumption_core(self):
        solver = make_solver(3, [[-1, -2]])
        result = solver.solve([1, 2, 3])
        assert not result.satisfiable
        assert result.core <= {1, 2}
        assert result.core

    def test_core_is_unsat_with_formula(self):
        rng = random.Random(7)
        for _ in range(60):
            num_vars = rng.randint(2, 7)
            cnf = [
                [
                    rng.choice([1, -1]) * rng.randint(1, num_vars)
                    for _ in range(rng.randint(1, 3))
                ]
                for _ in range(rng.randint(1, 24))
            ]
            assumptions = sorted(
                {rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(3)}
            )
            assumptions = [a for a in assumptions if -a not in assumptions]
            solver = make_solver(num_vars, cnf)
            result = solver.solve(assumptions)
            expected = brute_force(num_vars, cnf, assumptions)
            assert result.satisfiable == expected
            if not result.satisfiable:
                assert result.core <= set(assumptions)
                assert not brute_force(num_vars, cnf, sorted(result.core))

    def test_solver_reusable_after_assumption_unsat(self):
        solver = make_solver(2, [[-1, -2]])
        assert not solver.solve([1, 2]).satisfiable
        assert solver.solve([1]).satisfiable
        assert solver.solve().satisfiable

    def test_assumption_conflicts_level_zero(self):
        solver = make_solver(1, [[-1]])
        result = solver.solve([1])
        assert not result.satisfiable
        assert result.core == {1}


def pigeonhole(holes):
    """PHP(holes+1, holes): classic exponentially hard unsat family."""
    solver = Solver()
    var = {}
    for pigeon in range(holes + 1):
        for hole in range(holes):
            var[pigeon, hole] = solver.new_var()
    for pigeon in range(holes + 1):
        solver.add_clause([var[pigeon, hole] for hole in range(holes)])
    for hole in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                solver.add_clause([-var[p1, hole], -var[p2, hole]])
    return solver


class TestHardInstances:
    def test_pigeonhole_unsat(self):
        assert not pigeonhole(5).solve().satisfiable

    def test_pigeonhole_sat_when_enough_holes(self):
        solver = Solver()
        var = {}
        for pigeon in range(4):
            for hole in range(4):
                var[pigeon, hole] = solver.new_var()
        for pigeon in range(4):
            solver.add_clause([var[pigeon, hole] for hole in range(4)])
        for hole in range(4):
            for p1 in range(4):
                for p2 in range(p1 + 1, 4):
                    solver.add_clause([-var[p1, hole], -var[p2, hole]])
        assert solver.solve().satisfiable

    def test_xor_chain_unsat(self):
        """An odd cycle of forced xors is unsatisfiable (parity argument)."""
        n = 11
        solver = Solver()
        for _ in range(n):
            solver.new_var()
        for i in range(1, n):
            solver.add_clauses([[i, i + 1], [-i, -(i + 1)]])
        solver.add_clauses([[n, 1], [-n, -1]])
        # Chain of xors around an odd cycle is unsat.
        assert not solver.solve().satisfiable


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]
