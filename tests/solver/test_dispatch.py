"""Parallel dispatch, query caching, and structured solver statistics."""

import pytest

from repro.logic import FALSE, TRUE, FuncDecl, RelDecl, Sort, Var, vocabulary
from repro.logic import syntax as s
from repro.solver import (
    EprSolver,
    Query,
    QueryCache,
    SolverStats,
    install_cache,
    query_of,
    resolve_jobs,
    solve_queries,
)

elem = Sort("elem")
p = RelDecl("p", (elem,))
q = RelDecl("q", (elem,))
VOCAB = vocabulary(sorts=[elem], relations=[p, q], functions=[])
X = Var("X", elem)


@pytest.fixture(autouse=True)
def fresh_cache():
    """Isolate the process-global query cache per test."""
    cache = QueryCache()
    old = install_cache(cache)
    yield cache
    install_cache(old)


def _solver(formulas, **kw):
    solver = EprSolver(VOCAB, **kw)
    for index, formula in enumerate(formulas):
        solver.add(formula, name=f"f{index}")
    return solver


SOME_P = s.exists((X,), s.Rel(p, (X,)))
NO_P = s.forall((X,), s.not_(s.Rel(p, (X,))))
SOME_Q = s.exists((X,), s.Rel(q, (X,)))


class TestQueryCache:
    def test_identical_query_hits(self, fresh_cache):
        first = _solver([SOME_P, NO_P]).check()
        second = _solver([SOME_P, NO_P]).check()
        assert not first.satisfiable and not second.satisfiable
        assert second.statistics == {"cache_hits": 1}
        assert fresh_cache.hits == 1

    def test_different_queries_miss(self, fresh_cache):
        _solver([SOME_P, NO_P]).check()
        other = _solver([SOME_P, SOME_Q]).check()
        assert other.satisfiable
        assert "cache_hits" not in other.statistics
        assert fresh_cache.hits == 0
        assert len(fresh_cache) == 2

    def test_hit_preserves_answer_and_model(self, fresh_cache):
        first = _solver([SOME_P]).check()
        second = _solver([SOME_P]).check()
        assert second.satisfiable
        assert second.model == first.model
        assert second.core == first.core

    def test_tracked_and_untracked_do_not_collide(self, fresh_cache):
        tracked = EprSolver(VOCAB)
        tracked.add(NO_P, name="all")
        tracked.add(SOME_P, name="some", track=True)
        with_core = tracked.check()
        assert not with_core.satisfiable and with_core.core == {"some"}
        plain = _solver([NO_P, SOME_P]).check()
        assert not plain.satisfiable and plain.core == frozenset()

    def test_assumption_sets_are_separate_keys(self, fresh_cache):
        def prepared():
            solver = EprSolver(VOCAB)
            solver.add(SOME_P, name="base")
            solver.add(NO_P, name="no_p", track=True)
            solver.add(SOME_Q, name="some_q", track=True)
            return solver.prepare()

        assert not prepared().solve({"no_p"}).satisfiable
        assert prepared().solve({"some_q"}).satisfiable
        repeat = prepared().solve({"no_p"})
        assert not repeat.satisfiable
        assert repeat.statistics == {"cache_hits": 1}

    def test_install_none_disables(self):
        install_cache(None)
        _solver([SOME_P]).check()
        result = _solver([SOME_P]).check()
        assert "cache_hits" not in result.statistics

    def test_capacity_evicts_fifo(self):
        cache = QueryCache(capacity=1)
        install_cache(cache)
        _solver([SOME_P]).check()
        _solver([SOME_Q]).check()
        assert len(cache) == 1
        assert cache.evictions == 1
        result = _solver([SOME_P]).check()  # evicted: solved again
        assert "cache_hits" not in result.statistics

    def test_lru_eviction_keeps_recently_used(self):
        cache = QueryCache(capacity=2)
        install_cache(cache)
        _solver([SOME_P]).check()
        _solver([SOME_Q]).check()
        _solver([SOME_P]).check()  # hit: refreshes SOME_P's recency
        _solver([SOME_P, SOME_Q]).check()  # evicts SOME_Q, not SOME_P
        hit = _solver([SOME_P]).check()
        assert hit.statistics == {"cache_hits": 1}
        missed = _solver([SOME_Q]).check()
        assert "cache_hits" not in missed.statistics

    def test_eviction_count_reaches_stats(self):
        cache = QueryCache(capacity=1)
        install_cache(cache)
        _solver([SOME_P]).check()
        _solver([SOME_Q]).check()
        stats = SolverStats()
        stats.note_cache(cache)
        assert stats.cache_evictions == 1
        assert "evictions" in stats.format()

    def test_cache_size_env(self, monkeypatch):
        from repro.solver.cache import DEFAULT_CAPACITY, query_cache

        monkeypatch.setenv("REPRO_CACHE_SIZE", "2")
        assert query_cache(refresh=True).capacity == 2
        monkeypatch.delenv("REPRO_CACHE_SIZE")
        assert query_cache(refresh=True).capacity == DEFAULT_CAPACITY

    def test_cache_size_env_malformed_warns(self, monkeypatch, capsys):
        from repro.solver.cache import DEFAULT_CAPACITY, query_cache

        monkeypatch.setenv("REPRO_CACHE_SIZE", "big")
        assert query_cache(refresh=True).capacity == DEFAULT_CAPACITY
        assert "REPRO_CACHE_SIZE" in capsys.readouterr().err


class TestDispatch:
    QUERIES = [
        [SOME_P, NO_P],  # unsat
        [SOME_P, SOME_Q],  # sat
        [SOME_Q],  # sat
        [s.and_(SOME_Q, s.forall((X,), s.not_(s.Rel(q, (X,)))))],  # unsat
    ]

    def _queries(self):
        return [
            query_of(_solver(formulas), name=f"q{index}")
            for index, formulas in enumerate(self.QUERIES)
        ]

    def test_parallel_matches_serial(self):
        install_cache(None)  # make both paths actually solve
        serial = solve_queries(self._queries(), jobs=1)
        parallel = solve_queries(self._queries(), jobs=4)
        assert [r.satisfiable for (r,) in serial] == [False, True, True, False]
        assert [r.satisfiable for (r,) in parallel] == [
            r.satisfiable for (r,) in serial
        ]
        for (a,), (b,) in zip(serial, parallel):
            assert a.core == b.core
            assert (a.model is None) == (b.model is None)

    def test_multiple_solve_sets_share_grounding(self):
        solver = EprSolver(VOCAB)
        solver.add(SOME_P, name="base")
        solver.add(NO_P, name="no_p", track=True)
        solver.add(SOME_Q, name="some_q", track=True)
        query = query_of(
            solver, solve_sets=[frozenset({"no_p"}), frozenset({"some_q"})]
        )
        (results,) = solve_queries([query], jobs=1)
        assert [r.satisfiable for r in results] == [False, True]

    def test_stats_recorded(self):
        stats = SolverStats()
        solve_queries(self._queries(), jobs=2, stats=stats)
        assert stats.queries == 4
        assert stats.sat_answers == 2
        assert stats.unsat_answers == 2
        assert stats.dispatched == 4

    def test_resolve_jobs_priority(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) == 1
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        assert resolve_jobs(2) == 2
        monkeypatch.setenv("REPRO_JOBS", "junk")
        assert resolve_jobs(None) == 1

    def test_malformed_jobs_warns_on_stderr(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "8x")
        assert resolve_jobs(None) == 1
        err = capsys.readouterr().err
        assert "REPRO_JOBS" in err and "'8x'" in err

    def test_serial_fallback_when_fork_unavailable(self, monkeypatch):
        from repro.solver import dispatch

        monkeypatch.setattr(dispatch, "_fork_context", lambda: None)
        install_cache(None)
        stats = SolverStats()
        batches = solve_queries(self._queries(), jobs=4, stats=stats)
        assert [r.satisfiable for (r,) in batches] == [False, True, True, False]
        assert stats.dispatched == 0  # everything solved in-process

    def test_more_jobs_than_queries(self):
        install_cache(None)
        batches = solve_queries(self._queries(), jobs=32)
        assert [r.satisfiable for (r,) in batches] == [False, True, True, False]

    def test_single_query_runs_serial(self):
        stats = SolverStats()
        (batch,) = solve_queries(self._queries()[:1], jobs=8, stats=stats)
        assert not batch[0].satisfiable
        assert stats.dispatched == 0


@pytest.mark.slow
class TestParallelEntryPoints:
    def test_check_k_invariance_parallel_matches_serial(self, leader_bundle):
        from repro.core.bounded import check_k_invariance

        program = leader_bundle.program
        safety = leader_bundle.safety[0].formula
        install_cache(None)
        serial = check_k_invariance(program, safety, 1, jobs=1)
        parallel = check_k_invariance(program, safety, 1, jobs=2)
        assert serial.holds and parallel.holds

    def test_check_inductive_parallel_matches_serial(self, leader_bundle):
        from repro.core.induction import check_inductive

        program = leader_bundle.program
        conjectures = list(leader_bundle.invariant)
        install_cache(None)
        serial = check_inductive(program, conjectures, jobs=1)
        parallel = check_inductive(program, conjectures, jobs=2)
        assert serial.holds == parallel.holds


class TestSolverStats:
    def test_record_and_rates(self):
        stats = SolverStats()
        stats.record({"instances": 5}, satisfiable=True, cached=False)
        stats.record({"instances": 2}, satisfiable=False, cached=True)
        assert stats.queries == 2
        assert stats.sat_answers == 1 and stats.unsat_answers == 1
        assert stats.cache_hit_rate == 0.5
        assert stats.counters["instances"] == 7

    def test_merge(self):
        a, b = SolverStats(), SolverStats()
        a.record({}, satisfiable=True)
        b.record({}, satisfiable=False, dispatched=True)
        with b.phase("solve"):
            pass
        a.merge(b)
        assert a.queries == 2 and a.dispatched == 1
        assert "solve" in a.phase_seconds

    def test_format_mentions_cache_and_queries(self):
        stats = SolverStats()
        stats.record({"conflicts": 3}, satisfiable=False, cached=True)
        text = stats.format()
        assert "queries" in text and "cache" in text and "conflicts" in text
