"""The disk-backed query cache and the persistent worker pool.

Covers the cross-run cache tier (:class:`~repro.solver.cache.DiskCache`
and its fetch-through wiring in :class:`~repro.solver.cache.QueryCache`)
and the pool-reuse contract of :mod:`repro.solver.dispatch`: a second
batch must be served by the workers the first batch forked.
"""

import os
import pickle

import pytest

from repro.logic import RelDecl, Sort, Var, vocabulary
from repro.logic import syntax as s
from repro.solver import (
    DiskCache,
    EprResult,
    EprSolver,
    FailureReason,
    QueryCache,
    SolverStats,
    install_cache,
    query_of,
    solve_queries,
    unknown_result,
)
from repro.solver.cache import DISK_FORMAT, query_cache

elem = Sort("elem")
p = RelDecl("p", (elem,))
q = RelDecl("q", (elem,))
VOCAB = vocabulary(sorts=[elem], relations=[p, q], functions=[])
X = Var("X", elem)

SOME_P = s.exists((X,), s.Rel(p, (X,)))
NO_P = s.forall((X,), s.not_(s.Rel(p, (X,))))
SOME_Q = s.exists((X,), s.Rel(q, (X,)))

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="requires the fork start method"
)


@pytest.fixture(autouse=True)
def fresh_cache():
    cache = QueryCache()
    old = install_cache(cache)
    yield cache
    install_cache(old)


def _solver(formulas):
    solver = EprSolver(VOCAB)
    for index, formula in enumerate(formulas):
        solver.add(formula, name=f"f{index}")
    return solver


def _result(satisfiable=True, **kw) -> EprResult:
    return EprResult(satisfiable, **kw)


class TestDiskCache:
    def test_round_trip(self, tmp_path):
        disk = DiskCache(str(tmp_path))
        result = _result(core=frozenset({"a"}), statistics={"conflicts": 3})
        disk.store(("fp", (1, 2)), result)
        loaded = disk.lookup(("fp", (1, 2)))
        assert loaded == result
        assert disk.hits == 1 and len(disk) == 1

    def test_missing_entry_is_a_miss(self, tmp_path):
        disk = DiskCache(str(tmp_path))
        assert disk.lookup("absent") is None
        assert disk.misses == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        disk = DiskCache(str(tmp_path))
        disk.store("key", _result())
        path = disk._path("key")
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert disk.lookup("key") is None
        assert not os.path.exists(path)  # healed: next store recreates it

    def test_truncated_entry_is_a_miss(self, tmp_path):
        disk = DiskCache(str(tmp_path))
        disk.store("key", _result())
        path = disk._path("key")
        payload = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])
        assert disk.lookup("key") is None

    def test_key_mismatch_reads_as_miss(self, tmp_path):
        # A digest collision (or a hand-copied file) must never return a
        # result for the wrong key.
        disk = DiskCache(str(tmp_path))
        path = disk._path("key")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            pickle.dump((DISK_FORMAT, "other-key", _result()), handle)
        assert disk.lookup("key") is None

    def test_stale_format_reads_as_miss(self, tmp_path):
        disk = DiskCache(str(tmp_path))
        path = disk._path("key")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            pickle.dump((DISK_FORMAT + 1, "key", _result()), handle)
        assert disk.lookup("key") is None

    def test_unwritable_root_counts_write_errors(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        disk = DiskCache(str(blocker / "nested"))  # mkdir will fail
        disk.store("key", _result())
        assert disk.write_errors == 1
        assert disk.lookup("key") is None  # and the solve is not failed


class TestFetchThrough:
    def test_memory_miss_fetches_from_disk(self, tmp_path):
        disk = DiskCache(str(tmp_path))
        writer = QueryCache(disk=disk)
        writer.store("key", _result())
        reader = QueryCache(disk=disk)  # cold memory, same store
        assert reader.lookup("key") is not None
        assert reader.hits == 1 and reader.disk_hits == 1
        # Promoted into memory: the re-hit does not touch the disk again.
        assert reader.lookup("key") is not None
        assert disk.hits == 1

    def test_unknown_results_never_stored(self, tmp_path):
        disk = DiskCache(str(tmp_path))
        cache = QueryCache(disk=disk)
        cache.store("key", unknown_result(FailureReason.TIMEOUT))
        assert len(cache) == 0 and len(disk) == 0

    def test_store_overwrites_on_collision(self):
        # Regression: store() used to keep the stale entry on a repeated
        # key, discarding the re-solve's richer statistics.
        cache = QueryCache()
        cache.store("key", _result(statistics={"conflicts": 1}))
        cache.store("key", _result(statistics={"conflicts": 9}))
        assert len(cache) == 1
        assert cache.lookup("key").statistics == {"conflicts": 9}

    def test_end_to_end_cross_cache_hit(self, tmp_path):
        disk = DiskCache(str(tmp_path))
        install_cache(QueryCache(disk=disk))
        first = _solver([SOME_P, NO_P]).check()
        assert not first.satisfiable
        install_cache(QueryCache(disk=disk))  # fresh memory, same store
        second = _solver([SOME_P, NO_P]).check()
        assert not second.satisfiable
        assert second.cached and second.statistics == {"cache_hits": 1}


class TestCacheEnv:
    def test_repro_cache_read_at_call_time(self, monkeypatch):
        # Regression: REPRO_CACHE was read at import time, so setting it
        # after import (monkeypatch, late exports) silently did nothing.
        assert query_cache() is not None
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert query_cache() is None
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert query_cache() is not None

    def test_cache_dir_env_isolation(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_PERSIST", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a"))
        cache_a = query_cache(refresh=True)
        assert cache_a.disk is not None
        cache_a.store("key", _result())
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "b"))
        cache_b = query_cache(refresh=True)
        assert cache_b.lookup("key") is None  # different store
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a"))
        cache_a2 = query_cache(refresh=True)
        assert cache_a2.lookup("key") is not None  # same store, cold memory

    def test_persistence_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_PERSIST", raising=False)
        assert query_cache(refresh=True).disk is None


@needs_fork
class TestWorkerPool:
    QUERIES = [
        [SOME_P, NO_P],
        [SOME_P, SOME_Q],
        [SOME_Q],
        [s.and_(SOME_Q, s.forall((X,), s.not_(s.Rel(q, (X,)))))],
    ]
    VERDICTS = [False, True, True, False]

    def _queries(self):
        return [
            query_of(_solver(formulas), name=f"q{index}")
            for index, formulas in enumerate(self.QUERIES)
        ]

    def test_second_batch_reuses_workers(self):
        # Regression for the fork-per-query design: a second batch must be
        # served by the live pool, not by new forks.
        from repro.solver.dispatch import worker_pool

        install_cache(None)  # make every batch actually dispatch and solve
        first = solve_queries(self._queries(), jobs=2)
        pool = worker_pool()
        forks_after_first = pool.forks
        pids = {worker.process.pid for worker in pool.workers}
        second = solve_queries(self._queries(), jobs=2)
        assert pool.forks == forks_after_first
        assert {worker.process.pid for worker in pool.workers} == pids
        for (a,), (b,) in zip(first, second):
            assert a.satisfiable == b.satisfiable

    def test_pool_tracks_parent_cache_disable(self):
        # Workers fork with the parent's cache; install_cache(None) in the
        # parent must reach already-running workers via the generation
        # shipped with each task.
        stats = SolverStats()
        solve_queries(self._queries(), jobs=2)  # warm the pool + its caches
        install_cache(None)
        batches = solve_queries(self._queries(), jobs=2, stats=stats)
        assert [r.satisfiable for (r,) in batches] == self.VERDICTS
        # With the cache disabled everywhere, nothing may report cached.
        assert all(not r.cached for (r,) in batches)

    def test_pool_shares_disk_store_across_batches(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_PERSIST", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        install_cache(query_cache(refresh=True))
        solve_queries(self._queries(), jobs=2)
        # One worker's solves are on disk for everyone -- including a
        # brand-new memory cache in the parent.
        install_cache(query_cache(refresh=True))
        stats = SolverStats()
        batches = solve_queries(self._queries(), jobs=2, stats=stats)
        assert [r.satisfiable for (r,) in batches] == self.VERDICTS
        assert stats.cache_hits == len(self.QUERIES)
