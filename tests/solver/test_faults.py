"""Chaos tests: verdicts under injected worker faults never change.

The dispatch layer's contract is that crashes, hangs, and slowdowns in
worker processes affect *latency*, never *verdicts*: every query is
retried and ultimately falls back to a fault-free in-process solve, so a
faulted run must return exactly the SAFE/UNSAFE answers of a fault-free
run.  These tests exercise that with deterministic fault plans.
"""

import time

import pytest

from repro.logic import RelDecl, Sort, Var, vocabulary
from repro.logic import syntax as s
from repro.solver import (
    Budget,
    EprSolver,
    FaultPlan,
    SolverStats,
    install_cache,
    install_fault_plan,
    parse_fault_spec,
    query_of,
    solve_queries,
)
from repro.solver.dispatch import _fork_context
from repro.solver.faults import CRASH_EXIT_CODE, active_plan

needs_fork = pytest.mark.skipif(
    _fork_context() is None, reason="fork start method unavailable"
)

elem = Sort("elem")
p = RelDecl("p", (elem,))
q = RelDecl("q", (elem,))
VOCAB = vocabulary(sorts=[elem], relations=[p, q], functions=[])
X = Var("X", elem)

SOME_P = s.exists((X,), s.Rel(p, (X,)))
NO_P = s.forall((X,), s.not_(s.Rel(p, (X,))))
SOME_Q = s.exists((X,), s.Rel(q, (X,)))
NO_Q = s.forall((X,), s.not_(s.Rel(q, (X,))))

QUERIES = [
    [SOME_P, NO_P],  # unsat
    [SOME_P, SOME_Q],  # sat
    [SOME_Q],  # sat
    [s.and_(SOME_Q, NO_Q)],  # unsat
]
EXPECTED = [False, True, True, False]


@pytest.fixture(autouse=True)
def no_cache_no_faults():
    """Chaos runs must actually solve, and plans must not leak."""
    old_cache = install_cache(None)
    yield
    install_fault_plan(None)
    install_cache(old_cache)


def _queries(budget=None):
    out = []
    for index, formulas in enumerate(QUERIES):
        solver = EprSolver(VOCAB, budget=budget)
        for findex, formula in enumerate(formulas):
            solver.add(formula, name=f"f{findex}")
        out.append(query_of(solver, name=f"q{index}"))
    return out


class TestFaultPlan:
    def test_parse_valid_spec(self):
        plan = parse_fault_spec("crash:0.2,hang:0.1,slow:0.3:1.5,seed:7")
        assert plan == FaultPlan(
            crash=0.2, hang=0.1, slow=0.3, slow_seconds=1.5, seed=7
        )

    def test_parse_duration_fields(self):
        plan = parse_fault_spec("hang:0.5:12.0")
        assert plan.hang == 0.5 and plan.hang_seconds == 12.0

    @pytest.mark.parametrize(
        "spec",
        ["crash", "crash:no", "explode:0.5", "crash:1.5", "crash:0.7,hang:0.7",
         "crash:0.1:1:2", ""],
    )
    def test_parse_malformed(self, spec):
        assert parse_fault_spec(spec) is None

    def test_decide_is_deterministic(self):
        plan = FaultPlan(crash=0.5, seed=3)
        draws = [plan.decide("q1", attempt) for attempt in range(20)]
        assert draws == [plan.decide("q1", attempt) for attempt in range(20)]
        assert "crash" in draws and None in draws  # both outcomes occur

    def test_env_spec_malformed_warns_once(self, monkeypatch, capsys):
        install_fault_plan(None)
        monkeypatch.setenv("REPRO_FAULT", "crash:lots")
        assert active_plan() is None
        assert "REPRO_FAULT" in capsys.readouterr().err
        assert active_plan() is None  # blanked: no second warning
        assert "REPRO_FAULT" not in capsys.readouterr().err

    def test_installed_plan_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "crash:0.9")
        install_fault_plan(FaultPlan())  # hard "no faults"
        assert active_plan() is None
        install_fault_plan(None)
        assert active_plan() == FaultPlan(crash=0.9)

    def test_crash_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE not in (0, 1, 2)


@needs_fork
class TestChaos:
    def test_crashes_do_not_flip_verdicts(self):
        baseline = solve_queries(_queries(), jobs=2)
        install_fault_plan(FaultPlan(crash=0.6, seed=11))
        stats = SolverStats()
        chaotic = solve_queries(_queries(), jobs=2, stats=stats)
        assert [r.satisfiable for (r,) in chaotic] == EXPECTED
        assert [r.verdict for (r,) in chaotic] == [
            r.verdict for (r,) in baseline
        ]
        assert not any(r.unknown for (r,) in chaotic)
        assert stats.worker_crashes > 0  # the plan actually fired

    def test_hung_worker_killed_within_deadline(self):
        budget = Budget(wall_seconds=0.5)
        install_fault_plan(FaultPlan(hang=1.0, hang_seconds=3600.0, seed=1))
        stats = SolverStats()
        start = time.monotonic()
        batches = solve_queries(_queries(budget), jobs=2, stats=stats, retries=0)
        elapsed = time.monotonic() - start
        # External deadline is wall*2+1 = 2s per attempt; with retries=0 a
        # single kill per query then the fault-free serial fallback.
        assert elapsed < 30.0
        assert stats.worker_kills > 0
        assert stats.serial_fallbacks > 0
        assert [r.satisfiable for (r,) in batches] == EXPECTED

    def test_mixed_crash_hang_preserves_verdicts(self):
        budget = Budget(wall_seconds=0.5)
        install_fault_plan(
            FaultPlan(crash=0.3, hang=0.1, hang_seconds=30.0, seed=7)
        )
        stats = SolverStats()
        batches = solve_queries(_queries(budget), jobs=4, stats=stats)
        assert [r.satisfiable for (r,) in batches] == EXPECTED
        assert not any(r.unknown for (r,) in batches)
        assert stats.worker_crashes + stats.worker_kills > 0

    def test_no_fallback_reports_typed_unknown(self):
        install_fault_plan(FaultPlan(crash=1.0, seed=2))
        stats = SolverStats()
        batches = solve_queries(
            _queries(), jobs=2, stats=stats, retries=1, fallback=False
        )
        for (result,) in batches:
            assert result.unknown
            assert result.verdict == "unknown"
            assert result.failure is not None
        assert stats.unknown_answers == len(QUERIES)
        assert stats.retries > 0

    def test_slow_workers_just_finish(self):
        install_fault_plan(FaultPlan(slow=1.0, slow_seconds=0.05, seed=4))
        stats = SolverStats()
        batches = solve_queries(_queries(), jobs=2, stats=stats)
        assert [r.satisfiable for (r,) in batches] == EXPECTED
        assert stats.worker_crashes == stats.worker_kills == 0

    def test_pool_heals_after_chaotic_batch(self):
        # The persistent pool loses workers to a chaotic batch; the next
        # (fault-free) batch on the same pool must be served cleanly by
        # replacement workers, not poisoned by the carnage before it.
        install_fault_plan(FaultPlan(crash=0.6, seed=11))
        stats = SolverStats()
        solve_queries(_queries(), jobs=2, stats=stats)
        assert stats.worker_crashes > 0
        install_fault_plan(FaultPlan())  # hard "no faults"
        clean_stats = SolverStats()
        batches = solve_queries(_queries(), jobs=2, stats=clean_stats)
        assert [r.satisfiable for (r,) in batches] == EXPECTED
        assert clean_stats.worker_crashes == clean_stats.worker_kills == 0
        assert clean_stats.dispatched == len(QUERIES)


@needs_fork
@pytest.mark.slow
class TestChaosAcceptance:
    """ISSUE acceptance: chaos on real protocols matches fault-free runs."""

    # With seed 0 the faults that actually fire for these query names are
    # crashes; the hang-kill path has its own dedicated test above.
    PLAN = "crash:0.3,hang:0.1,seed:0"

    def _chaos_plan(self):
        plan = parse_fault_spec(self.PLAN)
        # Keep injected hangs short: the external deadline still has to
        # kill the worker, the test just shouldn't wait minutes for it.
        from dataclasses import replace

        return replace(plan, hang_seconds=30.0)

    def test_lock_server_bmc_verdict_stable(self):
        from repro.core.bounded import find_error_trace
        from repro.protocols import lock_server

        program = lock_server.build().program
        baseline = find_error_trace(program, 2, jobs=2)
        install_fault_plan(self._chaos_plan())
        stats = SolverStats()
        chaotic = find_error_trace(
            program, 2, jobs=2, stats=stats, budget=Budget(wall_seconds=20.0)
        )
        assert chaotic.holds == baseline.holds
        assert not chaotic.unknown
        assert stats.worker_crashes + stats.worker_kills > 0

    def test_leader_election_induction_verdict_stable(self, leader_bundle):
        from repro.core.induction import check_inductive

        program = leader_bundle.program
        conjectures = list(leader_bundle.invariant)
        baseline = check_inductive(program, conjectures, jobs=2)
        install_fault_plan(self._chaos_plan())
        stats = SolverStats()
        chaotic = check_inductive(
            program, conjectures, jobs=2, stats=stats,
            budget=Budget(wall_seconds=20.0),
        )
        assert chaotic.holds == baseline.holds
        assert not chaotic.unknown_obligations
        assert stats.worker_crashes + stats.worker_kills > 0
