"""The EPR decision procedure: decidability, models, cores, MBQI, equality."""

import pytest

from repro.logic import (
    FuncDecl,
    RelDecl,
    Sort,
    parse_formula,
    vocabulary,
)
from repro.solver import EprSolver, solve_epr

node = Sort("node")
ident = Sort("id")


@pytest.fixture(scope="module")
def vocab(request):
    return vocabulary(
        sorts=[node, ident],
        relations=[
            RelDecl("le", (ident, ident)),
            RelDecl("btw", (node, node, node)),
            RelDecl("leader", (node,)),
            RelDecl("pnd", (ident, node)),
        ],
        functions=[FuncDecl("idn", (node,), ident)],
    )


def fml(source, vocab, **kw):
    return parse_formula(source, vocab, **kw)


TOTAL_ORDER = (
    "(forall X:id. le(X, X))"
    " & (forall X, Y, Z:id. le(X, Y) & le(Y, Z) -> le(X, Z))"
    " & (forall X, Y:id. le(X, Y) & le(Y, X) -> X = Y)"
    " & (forall X, Y:id. le(X, Y) | le(Y, X))"
)

RING = (
    "(forall X, Y, Z. btw(X, Y, Z) -> btw(Y, Z, X))"
    " & (forall W, X, Y, Z. btw(W, X, Y) & btw(W, Y, Z) -> btw(W, X, Z))"
    " & (forall W, X, Y. btw(W, X, Y) -> ~btw(W, Y, X))"
    " & (forall W:node, X:node, Y:node. W ~= X & X ~= Y & W ~= Y ->"
    "    btw(W, X, Y) | btw(W, Y, X))"
)


class TestSatAndModels:
    def test_trivial_sat(self, vocab):
        result = solve_epr(vocab, [fml("exists N:node. leader(N)", vocab)])
        assert result.satisfiable
        assert result.model.satisfies(fml("exists N:node. leader(N)", vocab))

    def test_model_satisfies_all_constraints(self, vocab):
        formulas = [
            fml(TOTAL_ORDER, vocab),
            fml("forall N1, N2. N1 ~= N2 -> idn(N1) ~= idn(N2)", vocab),
            fml("exists M, N. M ~= N & leader(M) & ~leader(N)", vocab),
        ]
        result = solve_epr(vocab, formulas)
        assert result.satisfiable
        for formula in formulas:
            assert result.model.satisfies(formula)

    def test_unsat_injectivity(self, vocab):
        result = solve_epr(
            vocab,
            [
                fml("forall N1, N2. N1 ~= N2 -> idn(N1) ~= idn(N2)", vocab),
                fml("exists M, N. M ~= N & idn(M) = idn(N)", vocab),
            ],
        )
        assert not result.satisfiable

    def test_total_order_antisymmetry_unsat(self, vocab):
        result = solve_epr(
            vocab,
            [
                fml(TOTAL_ORDER, vocab),
                fml("exists X:id, Y:id. X ~= Y & le(X, Y) & le(Y, X)", vocab),
            ],
        )
        assert not result.satisfiable

    def test_finite_model_property_small_model(self, vocab):
        """Two existential node witnesses -> at most a handful of elements."""
        result = solve_epr(vocab, [fml("exists M:node, N:node. M ~= N", vocab)])
        assert result.satisfiable
        assert 2 <= result.model.sort_size(node) <= 3

    def test_skolems_can_merge(self, vocab):
        result = solve_epr(
            vocab,
            [
                fml("forall M, N:node. M = N", vocab),
                fml("exists M, N:node. leader(M) & leader(N)", vocab),
            ],
        )
        assert result.satisfiable
        assert result.model.sort_size(node) == 1

    def test_ring_axioms_consistent_with_three_nodes(self, vocab):
        result = solve_epr(
            vocab,
            [
                fml(RING, vocab),
                fml("exists X, Y, Z:node. X~=Y & Y~=Z & X~=Z & btw(X,Y,Z)", vocab),
            ],
        )
        assert result.satisfiable
        assert result.model.satisfies(fml(RING, vocab))
        assert result.model.sort_size(node) >= 3

    def test_ring_antisymmetry_unsat(self, vocab):
        result = solve_epr(
            vocab,
            [
                fml(RING, vocab),
                fml("exists X, Y, Z:node. btw(X, Y, Z) & btw(X, Z, Y)", vocab),
            ],
        )
        assert not result.satisfiable

    def test_function_congruence(self, vocab):
        """Equal arguments force equal function values (lazy congruence)."""
        result = solve_epr(
            vocab,
            [
                fml("exists M, N. M = N & idn(M) ~= idn(N)", vocab),
            ],
        )
        assert not result.satisfiable

    def test_relation_congruence(self, vocab):
        result = solve_epr(
            vocab,
            [fml("exists M, N. M = N & leader(M) & ~leader(N)", vocab)],
        )
        assert not result.satisfiable

    def test_term_to_elem_mapping(self, vocab):
        solver = EprSolver(vocab)
        solver.add(fml("exists M, N. M ~= N & leader(M) & ~leader(N)", vocab))
        result = solver.check()
        assert result.satisfiable
        assert result.term_to_elem
        leaders = result.model.rels[vocab.relation("leader")]
        assert len(leaders) >= 1


class TestUnsatCores:
    def test_core_excludes_irrelevant(self, vocab):
        solver = EprSolver(vocab)
        solver.add(fml(TOTAL_ORDER, vocab), name="order")
        solver.add(
            fml("exists X:id, Y:id. ~le(X, Y) & ~le(Y, X)", vocab),
            name="bad",
            track=True,
        )
        solver.add(
            fml("exists N:node. leader(N)", vocab), name="irrelevant", track=True
        )
        result = solver.check()
        assert not result.satisfiable
        assert "bad" in result.core
        assert "irrelevant" not in result.core

    def test_core_with_multiple_needed(self, vocab):
        solver = EprSolver(vocab)
        solver.add(fml("forall N:node. leader(N)", vocab), name="all", track=True)
        solver.add(
            fml("exists N:node. ~leader(N)", vocab), name="some_not", track=True
        )
        result = solver.check()
        assert not result.satisfiable
        assert result.core == {"all", "some_not"}

    def test_untracked_unsat_gives_empty_core(self, vocab):
        solver = EprSolver(vocab)
        solver.add(fml("forall N:node. leader(N)", vocab))
        solver.add(fml("exists N:node. ~leader(N)", vocab))
        result = solver.check()
        assert not result.satisfiable
        assert result.core == frozenset()

    def test_duplicate_names_rejected(self, vocab):
        solver = EprSolver(vocab)
        solver.add(fml("exists N:node. leader(N)", vocab), name="a")
        with pytest.raises(ValueError):
            solver.add(fml("exists N:node. leader(N)", vocab), name="a")


class TestMbqi:
    def test_low_threshold_forces_lazy_path(self, vocab):
        """Same answers with eager_threshold=0 (everything lazy)."""
        formulas = [
            fml(TOTAL_ORDER, vocab),
            fml(RING, vocab),
            fml("forall N1, N2. N1 ~= N2 -> idn(N1) ~= idn(N2)", vocab),
            fml("exists M, N. M ~= N & pnd(idn(M), N)", vocab),
        ]
        eager = EprSolver(vocab)
        lazy = EprSolver(vocab, eager_threshold=0)
        for formula in formulas:
            eager.add(formula)
            lazy.add(formula)
        eager_result = eager.check()
        lazy_result = lazy.check()
        assert eager_result.satisfiable == lazy_result.satisfiable is True
        for formula in formulas:
            assert lazy_result.model.satisfies(formula)
        assert lazy_result.statistics["lazy_instances"] >= 0

    def test_lazy_unsat_matches_eager(self, vocab):
        formulas = [
            fml(TOTAL_ORDER, vocab),
            fml("exists X:id, Y:id. X ~= Y & le(X, Y) & le(Y, X)", vocab),
        ]
        lazy = EprSolver(vocab, eager_threshold=0)
        for formula in formulas:
            lazy.add(formula)
        assert not lazy.check().satisfiable


class TestAdoptedSymbols:
    def test_foreign_constants_join_universe(self, vocab):
        """Constants minted by callers (diagram witnesses) are adopted."""
        from repro.logic import App, and_, not_, Rel

        e1 = FuncDecl("diag_n1", (), node)
        e2 = FuncDecl("diag_n2", (), node)
        leader = vocab.relation("leader")
        formula = and_(
            Rel(leader, (App(e1, ()),)),
            not_(Rel(leader, (App(e2, ()),))),
        )
        result = solve_epr(vocab, [formula])
        assert result.satisfiable
        assert result.model.sort_size(node) >= 2

    def test_conflicting_symbol_names_rejected(self, vocab):
        from repro.logic import App, Rel

        fake_leader = RelDecl("leader", (ident,))  # wrong sort, same name
        x = FuncDecl("x", (), ident)
        solver = EprSolver(vocab)
        solver.add(Rel(fake_leader, (App(x, ()),)))
        with pytest.raises(ValueError, match="conflicts"):
            solver.check()


class TestEmptySortHandling:
    def test_unconstrained_sort_gets_default_element(self, vocab):
        result = solve_epr(vocab, [fml("exists X:id. le(X, X)", vocab)])
        assert result.satisfiable
        assert result.model.sort_size(node) >= 1  # non-empty domains
