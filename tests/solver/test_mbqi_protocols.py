"""Cross-validation: protocol obligations decided identically by the eager
and MBQI instantiation paths, and extracted CTIs really are CTIs."""

import pytest

from repro.core.induction import obligations
from repro.solver.epr import EprSolver


@pytest.mark.parametrize(
    "protocol", ["leader_election", "lock_server", "distributed_lock"]
)
class TestEagerVsLazyOnObligations:
    def test_same_verdicts(self, protocol):
        from repro.protocols import ALL_PROTOCOLS

        bundle = ALL_PROTOCOLS[protocol].build()
        # Mixed conjecture sets exercise both sat and unsat obligations.
        conjectures = list(bundle.invariant[:2])
        for obligation in obligations(bundle.program, conjectures):
            eager = EprSolver(bundle.program.vocab, eager_threshold=10**9)
            eager.add(obligation.vc, name="vc")
            lazy = EprSolver(bundle.program.vocab, eager_threshold=0)
            lazy.add(obligation.vc, name="vc")
            eager_result = eager.check()
            lazy_result = lazy.check()
            assert eager_result.satisfiable == lazy_result.satisfiable, (
                protocol,
                obligation.description,
            )

    def test_models_are_genuine_cti_states(self, protocol):
        """A sat obligation's model satisfies the axioms and premises."""
        from repro.protocols import ALL_PROTOCOLS

        bundle = ALL_PROTOCOLS[protocol].build()
        conjectures = list(bundle.safety)
        found = 0
        for obligation in obligations(bundle.program, conjectures):
            solver = EprSolver(bundle.program.vocab)
            solver.add(obligation.vc, name="vc")
            result = solver.check()
            if not result.satisfiable:
                continue
            found += 1
            model = result.model
            assert model.satisfies(bundle.program.axiom_formula)
            if obligation.kind == "consecution":
                for conjecture in conjectures:
                    assert model.satisfies(conjecture.formula)
        assert found >= 1  # safety alone is never inductive
