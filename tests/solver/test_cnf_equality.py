"""Tseitin conversion and the ground equality theory."""

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    App,
    Eq,
    FuncDecl,
    Iff,
    Implies,
    Rel,
    RelDecl,
    Sort,
    and_,
    iff,
    implies,
    not_,
    or_,
    vocabulary,
)
from repro.solver.cnf import CnfBuilder, term_key
from repro.solver.equality import EqualityTheory
from repro.solver.sat import Solver

elem = Sort("elem")
p = RelDecl("p", (elem,))
a = FuncDecl("a", (), elem)
b = FuncDecl("b", (), elem)
c = FuncDecl("c", (), elem)
f = FuncDecl("f", (elem,), elem)
A, B, C = App(a, ()), App(b, ()), App(c, ())


def fresh_builder():
    return CnfBuilder(Solver())


class TestTermKey:
    def test_deterministic_and_distinct(self):
        assert term_key(A) == "a"
        assert term_key(App(f, (A,))) == "f(a)"
        assert term_key(App(f, (A,))) != term_key(App(f, (B,)))

    def test_non_ground_rejected(self):
        from repro.logic import Var

        with pytest.raises(ValueError):
            term_key(Var("X", elem))


class TestCnfBuilder:
    def test_eq_canonicalization(self):
        builder = fresh_builder()
        assert builder.eq_lit(A, B) == builder.eq_lit(B, A)
        assert builder.eq_lit(A, A) == builder.true_lit()

    def test_atom_vars_stable(self):
        builder = fresh_builder()
        atom = Rel(p, (A,))
        assert builder.atom_var(atom) == builder.atom_var(atom)

    def test_encode_caches_subformulas(self):
        builder = fresh_builder()
        formula = and_(Rel(p, (A,)), Rel(p, (B,)))
        first = builder.encode(formula)
        before = builder.solver.num_vars
        second = builder.encode(formula)
        assert first == second
        assert builder.solver.num_vars == before

    @pytest.mark.parametrize(
        "make",
        [
            lambda x, y: and_(x, y),
            lambda x, y: or_(x, y),
            lambda x, y: Implies(x, y),
            lambda x, y: Iff(x, y),
            lambda x, y: not_(and_(x, not_(y))),
        ],
    )
    def test_encoding_is_equisatisfiable(self, make):
        """Asserting the formula and solving agrees with truth tables."""
        import itertools

        atom_x, atom_y = Rel(p, (A,)), Rel(p, (B,))
        formula = make(atom_x, atom_y)
        # Brute force over the two atoms.
        def evaluate(vx, vy):
            env = {atom_x: vx, atom_y: vy}

            def go(g):
                if g == TRUE:
                    return True
                if g == FALSE:
                    return False
                if isinstance(g, Rel):
                    return env[g]
                if isinstance(g, type(not_(atom_x))) and hasattr(g, "arg"):
                    return not go(g.arg)
                if isinstance(g, type(and_(atom_x, atom_y))):
                    return all(go(h) for h in g.args)
                if isinstance(g, type(or_(atom_x, atom_y))) and hasattr(g, "args"):
                    return any(go(h) for h in g.args)
                if isinstance(g, Implies):
                    return (not go(g.lhs)) or go(g.rhs)
                if isinstance(g, Iff):
                    return go(g.lhs) == go(g.rhs)
                raise AssertionError(g)

            return go(formula)

        expected_sat = any(
            evaluate(vx, vy) for vx, vy in itertools.product([False, True], repeat=2)
        )
        builder = fresh_builder()
        builder.assert_formula(formula)
        assert builder.solver.solve().satisfiable == expected_sat

    def test_selector_guarding(self):
        builder = fresh_builder()
        selector = builder.solver.new_var()
        builder.assert_formula(Rel(p, (A,)), selector)
        builder.assert_formula(not_(Rel(p, (A,))), None)
        # Without the selector the contradiction is dormant.
        assert builder.solver.solve().satisfiable
        assert not builder.solver.solve([selector]).satisfiable


class TestEqualityTheory:
    def _setup(self, terms):
        vocab = vocabulary(sorts=[elem], relations=[p], functions=[a, b, c, f])
        builder = fresh_builder()
        universe = {elem: terms}
        theory = EqualityTheory(builder, vocab, universe)
        return vocab, builder, theory

    def test_transitivity_enforced_lazily(self):
        vocab, builder, theory = self._setup([A, B, C])
        solver = builder.solver
        solver.add_clause([builder.eq_lit(A, B)])
        solver.add_clause([builder.eq_lit(B, C)])
        solver.add_clause([-builder.eq_lit(A, C)])
        # The raw SAT level accepts; the theory refutes via path clauses.
        for _ in range(10):
            result = solver.solve()
            if not result.satisfiable:
                break
            reps = theory.classes(result.model)
            violations = theory.congruence_violations(result.model, reps)
            assert violations, "theory must object to a broken triangle"
            for clause in violations:
                solver.add_clause(clause)
        assert not solver.solve().satisfiable

    def test_classes_from_model(self):
        vocab, builder, theory = self._setup([A, B, C])
        solver = builder.solver
        solver.add_clause([builder.eq_lit(A, B)])
        solver.add_clause([-builder.eq_lit(A, C)])
        result = solver.solve()
        reps = theory.classes(result.model)
        assert reps[A] == reps[B]
        assert reps[A] != reps[C]

    def test_relation_congruence_violation_detected(self):
        vocab, builder, theory = self._setup([A, B])
        solver = builder.solver
        solver.add_clause([builder.eq_lit(A, B)])
        solver.add_clause([builder.atom_var(Rel(p, (A,)))])
        solver.add_clause([-builder.atom_var(Rel(p, (B,)))])
        result = solver.solve()
        assert result.satisfiable  # the raw SAT level allows it...
        reps = theory.classes(result.model)
        violations = theory.congruence_violations(result.model, reps)
        assert violations  # ...but the theory refutes it
        for clause in violations:
            solver.add_clause(clause)
        assert not solver.solve().satisfiable

    def test_function_congruence_violation_detected(self):
        terms = [A, B, App(f, (A,)), App(f, (B,))]
        vocab, builder, theory = self._setup(terms)
        solver = builder.solver
        solver.add_clause([builder.eq_lit(A, B)])
        solver.add_clause([-builder.eq_lit(App(f, (A,)), App(f, (B,)))])
        result = solver.solve()
        assert result.satisfiable
        reps = theory.classes(result.model)
        violations = theory.congruence_violations(result.model, reps)
        assert violations
        for clause in violations:
            solver.add_clause(clause)
        assert not solver.solve().satisfiable

    def test_large_universe_accepted(self):
        """Lazy equality has no eager per-sort closure, so wide universes
        (function-heavy BMC unrollings) construct cheaply."""
        many = [App(FuncDecl(f"t{i}", (), elem), ()) for i in range(200)]
        vocab, builder, theory = self._setup(many)
        result = builder.solver.solve()
        assert result.satisfiable
        reps = theory.classes(result.model)
        assert len(reps) == 200
