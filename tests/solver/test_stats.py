"""SolverStats: recording, merging, phases, and cache-hit identification."""

import copy
from types import SimpleNamespace

import pytest

from repro import obs
from repro.solver import SolverStats


def _result(satisfiable=False, unknown=False, cached=False, statistics=None):
    return SimpleNamespace(
        satisfiable=satisfiable,
        unknown=unknown,
        cached=cached,
        statistics=statistics or {},
    )


def _sample(seed: int) -> SolverStats:
    """A stats record with every field nonzero and distinct per seed."""
    stats = SolverStats(
        queries=seed,
        sat_answers=seed + 1,
        unsat_answers=seed + 2,
        unknown_answers=seed + 3,
        cache_hits=seed + 4,
        cache_misses=seed + 5,
        cache_evictions=seed + 6,
        dispatched=seed + 7,
        retries=seed + 8,
        worker_kills=seed + 9,
        worker_crashes=seed + 10,
        serial_fallbacks=seed + 11,
    )
    stats.counters = {"conflicts": seed, f"only{seed}": 1}
    stats.phase_seconds = {"solve": float(seed), f"phase{seed}": 0.5}
    return stats


class TestRecord:
    def test_record_result_uses_explicit_cached_flag(self):
        stats = SolverStats()
        stats.record_result(_result(satisfiable=False, cached=True))
        assert stats.cache_hits == 1 and stats.cache_misses == 0
        assert stats.unsat_answers == 1

    def test_engine_counter_named_cache_hits_is_not_a_hit(self):
        # The old detection sniffed statistics for a "cache_hits" key; a
        # result whose merged engine counters happen to carry that name
        # must not be mislabeled now that the flag is explicit.
        stats = SolverStats()
        stats.record_result(
            _result(satisfiable=True, cached=False, statistics={"cache_hits": 3})
        )
        assert stats.cache_hits == 0 and stats.cache_misses == 1
        assert stats.counters["cache_hits"] == 3  # still merged as a counter

    def test_unknown_beats_satisfiable(self):
        stats = SolverStats()
        stats.record_result(_result(satisfiable=None, unknown=True))
        assert stats.unknown_answers == 1
        assert stats.sat_answers == stats.unsat_answers == 0

    def test_note_cache_accumulates_across_caches(self):
        stats = SolverStats()
        stats.note_cache(SimpleNamespace(evictions=3))
        stats.note_cache(SimpleNamespace(evictions=4))
        stats.note_cache(None)
        assert stats.cache_evictions == 7

    def test_cache_hit_rate(self):
        stats = SolverStats()
        assert stats.cache_hit_rate == 0.0
        stats.record_result(_result(cached=True))
        stats.record_result(_result(cached=False))
        stats.record_result(_result(cached=False))
        assert stats.cache_hit_rate == pytest.approx(1 / 3)


class TestPhase:
    def test_repeated_phases_accumulate(self):
        stats = SolverStats()
        with stats.phase("solve"):
            pass
        first = stats.phase_seconds["solve"]
        with stats.phase("solve"):
            pass
        assert stats.phase_seconds["solve"] > first

    def test_nested_phases_both_recorded(self):
        stats = SolverStats()
        with stats.phase("outer"):
            with stats.phase("inner"):
                pass
        assert set(stats.phase_seconds) == {"outer", "inner"}
        assert stats.phase_seconds["outer"] >= stats.phase_seconds["inner"]

    def test_phase_records_on_exception(self):
        stats = SolverStats()
        with pytest.raises(RuntimeError):
            with stats.phase("doomed"):
                raise RuntimeError
        assert "doomed" in stats.phase_seconds

    def test_phase_mirrors_into_metrics_registry(self):
        registry = obs.MetricsRegistry()
        old = obs.install_metrics(registry)
        try:
            stats = SolverStats()
            with stats.phase("bmc"):
                pass
            with stats.phase("bmc"):
                pass
        finally:
            obs.install_metrics(old)
        histogram = registry.to_dict()["histograms"]["phase_seconds{phase=bmc}"]
        assert histogram["count"] == 2


class TestMerge:
    def test_merge_adds_every_field(self):
        left, right = _sample(1), _sample(100)
        merged = copy.deepcopy(left)
        merged.merge(right)
        assert merged.queries == left.queries + right.queries
        assert merged.unknown_answers == left.unknown_answers + right.unknown_answers
        assert merged.cache_evictions == left.cache_evictions + right.cache_evictions
        assert merged.serial_fallbacks == left.serial_fallbacks + right.serial_fallbacks
        assert merged.counters["conflicts"] == 101
        assert merged.counters["only1"] == merged.counters["only100"] == 1
        assert merged.phase_seconds["solve"] == pytest.approx(101.0)

    def test_merge_is_associative(self):
        a, b, c = _sample(1), _sample(10), _sample(100)
        left = copy.deepcopy(a)
        left.merge(b)
        left.merge(c)
        bc = copy.deepcopy(b)
        bc.merge(c)
        right = copy.deepcopy(a)
        right.merge(bc)
        assert left == right

    def test_merge_identity(self):
        stats = _sample(5)
        merged = copy.deepcopy(stats)
        merged.merge(SolverStats())
        assert merged == stats

    def test_format_mentions_the_interesting_fields(self):
        text = _sample(2).format()
        assert "hit rate" in text and "faults" in text and "[solve]" in text
