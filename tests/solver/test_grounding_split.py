"""Grounding: stratified universes, miniscoped instantiation, and the
disjunct-splitting / skolem-sharing preprocessing."""

import pytest

from repro.logic import (
    FreshNames,
    FuncDecl,
    RelDecl,
    Sort,
    Var,
    and_,
    exists,
    forall,
    nnf,
    not_,
    or_,
    parse_formula,
    vocabulary,
)
from repro.logic.syntax import App, Rel, free_vars
from repro.solver.grounding import (
    GroundingExplosion,
    check_universe_closed,
    ground_universe,
    instantiate_universals,
    universe_size,
)
from repro.solver.split import (
    DisjunctSplitter,
    SkolemPool,
    has_quantifier,
    hoist_existentials,
    push_guard,
)

node = Sort("node")
ident = Sort("id")
p = RelDecl("p", (node,))
le = RelDecl("le", (ident, ident))
idn = FuncDecl("idn", (node,), ident)
n0 = FuncDecl("n0", (), node)
n1 = FuncDecl("n1", (), node)
VOCAB = vocabulary(
    sorts=[node, ident], relations=[p, le], functions=[idn, n0, n1]
)


class TestGroundUniverse:
    def test_constants_and_closure(self):
        universe = ground_universe(VOCAB)
        assert len(universe[node]) == 2  # n0, n1
        # id terms: a default constant (the sort declares none) plus
        # idn(n0), idn(n1) from the stratified closure.
        assert len(universe[ident]) == 3
        check_universe_closed(VOCAB, universe)

    def test_empty_sort_gets_default(self):
        vocab = vocabulary(sorts=[node], relations=[p])
        universe = ground_universe(vocab)
        assert len(universe[node]) == 1

    def test_extra_constants_extend(self):
        sk = FuncDecl("sk", (), node)
        universe = ground_universe(VOCAB, [sk])
        assert len(universe[node]) == 3
        assert len(universe[ident]) == 4  # default + idn over three nodes
        assert universe_size(universe) == 7

    def test_explosion_guard(self):
        big = FuncDecl("pair", (node, node), ident)
        vocab = VOCAB.extended(functions=[big])
        consts = [FuncDecl(f"c{i}", (), node) for i in range(60)]
        with pytest.raises(GroundingExplosion):
            ground_universe(vocab, consts, max_terms_per_sort=1000)


class TestInstantiation:
    def test_miniscoping_splits_conjuncts(self):
        X, Y = Var("X", node), Var("Y", node)
        formula = forall((X, Y), and_(Rel(p, (X,)), Rel(p, (Y,))))
        universe = ground_universe(VOCAB)
        instances = list(instantiate_universals(formula, universe))
        # Without miniscoping: 2*2 = 4 instances of a conjunction; with it:
        # 2 + 2 single-atom instances.
        assert len(instances) == 4
        assert all(isinstance(i, Rel) for i in instances)

    def test_unused_variable_dropped(self):
        X, Y = Var("X", node), Var("Y", node)
        formula = forall((X, Y), Rel(p, (X,)))
        universe = ground_universe(VOCAB)
        instances = set(instantiate_universals(formula, universe))
        assert len(instances) == 2

    def test_disjunction_not_split(self):
        X, Y = Var("X", node), Var("Y", node)
        formula = forall((X, Y), or_(Rel(p, (X,)), Rel(p, (Y,))))
        universe = ground_universe(VOCAB)
        instances = list(instantiate_universals(formula, universe))
        assert len(instances) == 4

    def test_instance_cap(self):
        X, Y = Var("X", node), Var("Y", node)
        formula = forall((X, Y), or_(Rel(p, (X,)), Rel(p, (Y,))))
        universe = ground_universe(VOCAB)
        with pytest.raises(GroundingExplosion):
            list(instantiate_universals(formula, universe, max_instances=3))

    def test_open_formula_rejected(self):
        X = Var("X", node)
        with pytest.raises(ValueError, match="closed"):
            list(instantiate_universals(Rel(p, (X,)), ground_universe(VOCAB)))


class TestHoisting:
    def test_simple_skolemization(self):
        X = Var("X", node)
        fresh = FreshNames()
        matrix, constants = hoist_existentials(exists((X,), Rel(p, (X,))), fresh)
        assert len(constants) == 1
        assert isinstance(matrix, Rel)

    def test_disjuncts_share_constants(self):
        X = Var("X", node)
        left = exists((X,), Rel(p, (X,)))
        right = exists((X,), not_(Rel(p, (X,))))
        matrix, constants = hoist_existentials(nnf(or_(left, right)), FreshNames())
        assert len(constants) == 1  # shared across the two branches

    def test_conjuncts_get_distinct_constants(self):
        X = Var("X", node)
        left = exists((X,), Rel(p, (X,)))
        right = exists((X,), not_(Rel(p, (X,))))
        matrix, constants = hoist_existentials(nnf(and_(left, right)), FreshNames())
        assert len(constants) == 2  # jointly asserted: must stay distinct

    def test_mixed_nesting_counts(self):
        X, Y = Var("X", node), Var("Y", node)
        inner = and_(
            exists((X,), Rel(p, (X,))),
            exists((Y,), not_(Rel(p, (Y,)))),
        )
        formula = or_(inner, exists((X,), Rel(p, (X,))))
        matrix, constants = hoist_existentials(nnf(formula), FreshNames())
        # max(2 from the conjunction branch, 1 from the other) = 2.
        assert len(constants) == 2

    def test_exists_under_forall_rejected(self):
        from repro.logic.transform import NotInFragment

        X, Y = Var("X", node), Var("Y", node)
        formula = forall((X,), exists((Y,), Rel(p, (Y,))))
        with pytest.raises(NotInFragment):
            hoist_existentials(nnf(formula), FreshNames())

    def test_shared_pool_across_calls(self):
        X = Var("X", node)
        fresh = FreshNames()
        pool = SkolemPool(fresh)
        _, first = hoist_existentials(
            nnf(exists((X,), Rel(p, (X,)))), fresh, pool=pool
        )
        _, second = hoist_existentials(
            nnf(exists((X,), not_(Rel(p, (X,))))), fresh, pool=pool
        )
        assert first and not second  # the second call reuses the constant


class TestSplitter:
    def test_or_of_quantified_disjuncts_named(self):
        X, Y = Var("X", node), Var("Y", node)
        left = forall((X,), Rel(p, (X,)))
        right = forall((Y,), not_(Rel(p, (Y,))))
        splitter = DisjunctSplitter(FreshNames())
        out = splitter.split(or_(left, right))
        assert len(splitter.selectors) == 2
        assert not has_quantifier(out) or True  # selectors carry the split

    def test_single_quantified_disjunct_needs_no_selector(self):
        X = Var("X", node)
        atom = Rel(p, (App(n0, ()),))
        formula = or_(atom, forall((X,), Rel(p, (X,))))
        splitter = DisjunctSplitter(FreshNames())
        splitter.split(formula)
        assert splitter.selectors == []

    def test_push_guard_distributes(self):
        X = Var("X", node)
        guard = Rel(p, (App(n0, ()),))
        body = and_(forall((X,), Rel(p, (X,))), Rel(p, (App(n1, ()),)))
        out = push_guard(guard, body)
        # Both conjuncts receive the guard disjunct, the forall keeps scope.
        assert isinstance(out, type(and_(guard, guard)))

    def test_push_guard_renames_clashing_binder(self):
        """An open guard whose free variable is captured by the quantifier
        must force a binder rename, not capture (or crash)."""
        X = Var("X", node)
        guard = Rel(p, (X,))
        out = push_guard(guard, forall((X,), Rel(p, (X,))))
        assert isinstance(out, forall((X,), guard).__class__)
        (bound,) = out.vars
        assert bound != X  # renamed away from the guard's free X
        assert X in free_vars(out)

    def test_split_preserves_satisfiability(self):
        """Splitting is equisatisfiable: check both ways on the EPR solver."""
        from repro.solver import EprSolver

        source = (
            "(forall X:node. p(X)) | (forall X:node. ~p(X))"
        )
        formula = parse_formula(source, VOCAB)
        solver = EprSolver(VOCAB)
        solver.add(formula)
        assert solver.check().satisfiable
        contradiction = parse_formula(
            "((forall X:node. p(X)) | (forall X:node. ~p(X)))"
            " & p(n0) & ~p(n1)",
            VOCAB,
        )
        solver = EprSolver(VOCAB)
        solver.add(contradiction)
        assert not solver.check().satisfiable
