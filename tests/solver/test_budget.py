"""Budgets: cooperative enforcement, UNKNOWN verdicts, env resolution."""

import pytest

from repro.logic import RelDecl, Sort, Var, vocabulary
from repro.logic import syntax as s
from repro.solver import (
    Budget,
    BudgetExceeded,
    EprSolver,
    FailureReason,
    QueryCache,
    install_cache,
    resolve_budget,
    resolve_retries,
)

elem = Sort("elem")
p = RelDecl("p", (elem,))
r = RelDecl("r", (elem, elem))
VOCAB = vocabulary(sorts=[elem], relations=[p, r], functions=[])
X, Y = Var("X", elem), Var("Y", elem)

SOME_P = s.exists((X,), s.Rel(p, (X,)))
NO_P = s.forall((X,), s.not_(s.Rel(p, (X,))))


@pytest.fixture(autouse=True)
def fresh_cache():
    cache = QueryCache()
    old = install_cache(cache)
    yield cache
    install_cache(old)


def _solver(formulas, budget=None):
    solver = EprSolver(VOCAB, budget=budget)
    for index, formula in enumerate(formulas):
        solver.add(formula, name=f"f{index}")
    return solver


class TestBudgetRecord:
    def test_unlimited(self):
        assert Budget().unlimited
        assert not Budget(wall_seconds=1.0).unlimited
        assert not Budget(conflicts=10).unlimited

    def test_escalated_doubles_every_limit(self):
        budget = Budget(
            wall_seconds=1.5, conflicts=100, decisions=200, instances=50, rss_mb=64
        )
        bigger = budget.escalated()
        assert bigger.wall_seconds == 3.0
        assert bigger.conflicts == 200
        assert bigger.decisions == 400
        assert bigger.instances == 100
        assert bigger.rss_mb == 128

    def test_escalated_keeps_none_unlimited(self):
        bigger = Budget(conflicts=10).escalated()
        assert bigger.wall_seconds is None and bigger.conflicts == 20

    def test_meter_conflict_cap(self):
        meter = Budget(conflicts=2).start()
        meter.charge_conflict()
        meter.charge_conflict()
        with pytest.raises(BudgetExceeded) as err:
            meter.charge_conflict()
        assert err.value.reason is FailureReason.CONFLICT_BUDGET

    def test_meter_instance_cap(self):
        meter = Budget(instances=3).start()
        meter.charge_instances(3)
        with pytest.raises(BudgetExceeded) as err:
            meter.charge_instances()
        assert err.value.reason is FailureReason.GROUNDING_BLOWUP

    def test_meter_expired_deadline(self):
        meter = Budget(wall_seconds=-1.0).start()  # already past
        with pytest.raises(BudgetExceeded) as err:
            meter.check_deadline()
        assert err.value.reason is FailureReason.TIMEOUT


class TestBudgetedSolver:
    def test_instance_budget_yields_grounding_unknown(self):
        some_edge = s.exists((X, Y), s.Rel(r, (X, Y)))
        all_edges = s.forall((X, Y), s.Rel(r, (X, Y)))
        result = _solver(
            [some_edge, all_edges], budget=Budget(instances=1)
        ).check()
        assert result.unknown
        assert result.verdict == "unknown"
        assert result.failure is FailureReason.GROUNDING_BLOWUP
        assert not result.satisfiable and not result.is_unsat

    def test_expired_wall_clock_yields_timeout_unknown(self):
        result = _solver([SOME_P, NO_P], budget=Budget(wall_seconds=-1.0)).check()
        assert result.unknown
        assert result.failure is FailureReason.TIMEOUT

    def test_unlimited_budget_is_ignored(self):
        solver = _solver([SOME_P, NO_P], budget=Budget())
        assert solver.budget is None
        assert solver.check().is_unsat

    def test_generous_budget_does_not_change_verdicts(self):
        budget = Budget(wall_seconds=60.0, conflicts=10_000, instances=100_000)
        assert not _solver([SOME_P, NO_P], budget=budget).check().satisfiable
        assert _solver([SOME_P], budget=budget).check().satisfiable

    def test_unknown_results_never_cached(self, fresh_cache):
        starved = _solver([SOME_P, NO_P], budget=Budget(wall_seconds=-1.0)).check()
        assert starved.unknown
        assert len(fresh_cache) == 0
        # A later unbudgeted run gets the real answer, not a poisoned hit.
        result = _solver([SOME_P, NO_P]).check()
        assert result.is_unsat and "cache_hits" not in result.statistics


class TestEnvResolution:
    def test_explicit_arguments_win(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT", "99")
        budget = resolve_budget(wall_seconds=1.0, conflicts=5)
        assert budget.wall_seconds == 1.0 and budget.conflicts == 5

    def test_env_fills_gaps(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT", "2.5")
        monkeypatch.setenv("REPRO_CONFLICT_BUDGET", "123")
        monkeypatch.setenv("REPRO_MEMORY_MB", "256")
        budget = resolve_budget()
        assert budget.wall_seconds == 2.5
        assert budget.conflicts == 123
        assert budget.rss_mb == 256

    def test_all_unset_returns_none(self, monkeypatch):
        for name in ("REPRO_TIMEOUT", "REPRO_CONFLICT_BUDGET", "REPRO_MEMORY_MB"):
            monkeypatch.delenv(name, raising=False)
        assert resolve_budget() is None

    def test_malformed_env_warns_and_ignores(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TIMEOUT", "fast")
        monkeypatch.setenv("REPRO_CONFLICT_BUDGET", "-3")
        assert resolve_budget() is None
        err = capsys.readouterr().err
        assert "REPRO_TIMEOUT" in err and "'fast'" in err
        assert "REPRO_CONFLICT_BUDGET" in err

    def test_resolve_retries(self, monkeypatch):
        monkeypatch.delenv("REPRO_RETRIES", raising=False)
        assert resolve_retries() == 2
        assert resolve_retries(0) == 0
        assert resolve_retries(5) == 5
        monkeypatch.setenv("REPRO_RETRIES", "0")
        assert resolve_retries() == 0
        monkeypatch.setenv("REPRO_RETRIES", "7")
        assert resolve_retries() == 7

    def test_malformed_retries_warns(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RETRIES", "many")
        assert resolve_retries() == 2
        assert "REPRO_RETRIES" in capsys.readouterr().err
