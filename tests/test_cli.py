"""The command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "leader_election" in out and "chord" in out

    def test_table(self, capsys):
        assert main(["table"]) == 0
        out = capsys.readouterr().out
        assert "lock_server" in out
        assert " 21" in out  # the lock server's I column

    def test_check_lock_server(self, capsys):
        assert main(["check", "lock_server"]) == 0
        out = capsys.readouterr().out
        assert "invariant inductive: True" in out
        assert "C8" in out

    def test_bmc_clean(self, capsys):
        assert main(["bmc", "lock_server", "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "no assertion violation" in out

    @pytest.mark.slow
    def test_bmc_finds_figure4_bug(self, capsys):
        code = main(["bmc", "leader_election", "-k", "4", "--drop-axiom", "unique_ids"])
        assert code == 1
        out = capsys.readouterr().out
        assert "assertion violation at depth 4" in out
        assert "send" in out

    def test_session_lock_server(self, capsys):
        assert main(["session", "lock_server"]) == 0
        out = capsys.readouterr().out
        assert "G = 8 CTIs" in out

    def test_unknown_protocol(self):
        with pytest.raises(SystemExit, match="unknown protocol"):
            main(["check", "nonexistent"])

    def test_obs_flags_on_every_solving_subcommand(self, tmp_path, capsys):
        # --trace/--metrics/--progress parse everywhere; the end-to-end
        # trace content is covered in tests/obs/test_report.py.
        trace = tmp_path / "t.jsonl"
        assert main(["list", "--trace", str(trace)]) == 0
        assert trace.read_text().startswith('{"e":"run"')
        assert main(["bmc", "lock_server", "-k", "1", "--trace", str(trace)]) == 0
        assert main(["session", "lock_server", "--progress"]) == 0
        assert "> repro.session" in capsys.readouterr().err

    def test_verify_rml_file(self, tmp_path, capsys):
        from repro.protocols import rml_sources

        path = tmp_path / "lock_server.rml"
        path.write_text(rml_sources.LOCK_SERVER)
        code = main(
            [
                "verify",
                str(path),
                "-k",
                "2",
                "--conjecture",
                "forall C1, C2. ~(holds(C1) & holds(C2) & C1 ~= C2)",
                "--conjecture",
                "forall C1, C2. ~(grant_msg(C1) & grant_msg(C2) & C1 ~= C2)",
                "--conjecture",
                "forall C1, C2. ~(unlock_msg(C1) & unlock_msg(C2) & C1 ~= C2)",
                "--conjecture",
                "forall C1, C2. ~(grant_msg(C1) & holds(C2))",
                "--conjecture",
                "forall C1, C2. ~(grant_msg(C1) & unlock_msg(C2))",
                "--conjecture",
                "forall C1, C2. ~(holds(C1) & unlock_msg(C2))",
                "--conjecture",
                "forall C1:client. ~(grant_msg(C1) & server_free)",
                "--conjecture",
                "forall C1:client. ~(holds(C1) & server_free)",
                "--conjecture",
                "forall C1:client. ~(unlock_msg(C1) & server_free)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "inductive: True" in out

    def test_verify_reports_cti(self, tmp_path, capsys):
        from repro.protocols import rml_sources

        path = tmp_path / "lock_server.rml"
        path.write_text(rml_sources.LOCK_SERVER)
        code = main(
            [
                "verify",
                str(path),
                "-k",
                "1",
                "--conjecture",
                "forall C1, C2. ~(holds(C1) & holds(C2) & C1 ~= C2)",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "inductive: False" in out


class TestCliBudgets:
    """The --timeout/--conflict-budget flags and the UNKNOWN exit code."""

    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        # Isolate the global query cache: a hit legitimately bypasses the
        # budget, so starved runs must not see earlier tests' answers.
        from repro.solver import QueryCache, install_cache

        old = install_cache(QueryCache())
        yield
        install_cache(old)

    def test_bmc_starved_exits_2_with_degradation_report(self, capsys):
        code = main(["bmc", "lock_server", "-k", "2", "--timeout", "0.000001"])
        assert code == 2
        out = capsys.readouterr().out
        assert "unknown" in out and "timeout" in out

    def test_bmc_generous_budget_unchanged(self, capsys):
        code = main(["bmc", "lock_server", "-k", "1", "--timeout", "120"])
        assert code == 0
        assert "no assertion violation" in capsys.readouterr().out

    def test_check_starved_exits_2(self, capsys):
        code = main(["check", "lock_server", "--timeout", "0.000001", "--stats"])
        assert code == 2
        out = capsys.readouterr().out
        assert "invariant inductive: unknown" in out
        assert "obligations exhausting their budget" in out
        assert "unknown" in out  # stats verdict line includes the count

    def test_retries_flag_sets_env(self, monkeypatch):
        import os

        from repro.cli import build_parser, _budget_of

        monkeypatch.delenv("REPRO_RETRIES", raising=False)
        args = build_parser().parse_args(
            ["bmc", "lock_server", "--retries", "4"]
        )
        _budget_of(args)
        assert os.environ.get("REPRO_RETRIES") == "4"
        monkeypatch.delenv("REPRO_RETRIES", raising=False)


class TestLint:
    BAD_SOURCE = """program broken
sort node
sort ghost
relation pending : node, node
axiom bad: forall X:node. exists Y:node. pending(X, Y)
"""

    def test_lint_all_protocols_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "6 target(s): 0 error(s), 0 warning(s)" in out

    def test_lint_file_reports_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.rml"
        bad.write_text(self.BAD_SOURCE)
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RML003" in out  # forall-exists axiom
        assert "RML201" in out  # ...and the cycle it induces
        assert "RML101" in out  # unused sort 'ghost'
        assert f"{bad}:" in out  # compiler-style origin prefix

    def test_lint_json_format(self, tmp_path, capsys):
        import json as json_mod

        bad = tmp_path / "bad.rml"
        bad.write_text(self.BAD_SOURCE)
        main(["lint", str(bad), "--format", "json"])
        data = json_mod.loads(capsys.readouterr().out)
        assert data["schema"] == 1
        codes = {d["code"] for d in data["diagnostics"]}
        assert {"RML003", "RML101", "RML201"} <= codes
        spanned = [d for d in data["diagnostics"] if d["span"]]
        assert spanned, "lint diagnostics should carry source spans"

    def test_lint_sarif_to_output_file(self, tmp_path, capsys):
        import json as json_mod

        out_file = tmp_path / "lint.sarif"
        code = main(["lint", "lock_server", "--format", "sarif",
                     "--output", str(out_file)])
        assert code == 0
        log = json_mod.loads(out_file.read_text())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"] == []

    def test_lint_parse_error_becomes_rml000(self, tmp_path, capsys):
        bad = tmp_path / "nonsense.rml"
        bad.write_text("sort a\nrelation p : b\n")
        assert main(["lint", str(bad)]) == 1
        assert "RML000" in capsys.readouterr().out

    def test_lint_unknown_target(self):
        with pytest.raises(SystemExit, match="unknown target"):
            main(["lint", "no_such_protocol"])

    def test_lint_example_file_clean(self, tmp_path, capsys):
        from repro.protocols import rml_sources

        path = tmp_path / "lock_server.rml"
        path.write_text(rml_sources.LOCK_SERVER)
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out
