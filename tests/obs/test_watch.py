"""The live run watcher: incremental tailing and view folding.

The watcher is read-only and crash-agnostic, so these tests drive it
purely from synthesized run directories: a ``meta.json``, a journal with
engine progress records, and a trace tee with query/fault events.  The
tailing contract -- only whole lines are consumed, torn tails wait for
the next tick, corrupt lines are skipped -- is what makes watching a
run that is writing concurrently safe.
"""

import json
import os

import pytest

from repro.obs.watch import WatchView, _Tail, watch


def _write(path, lines):
    with open(path, "w") as handle:
        for line in lines:
            handle.write(json.dumps(line) + "\n")


def _append_raw(path, text):
    with open(path, "a") as handle:
        handle.write(text)


@pytest.fixture
def run_dir(tmp_path):
    run = tmp_path / "run"
    run.mkdir()
    with open(run / "meta.json", "w") as handle:
        json.dump(
            {
                "format": 1,
                "meta": {
                    "command": "bmc",
                    "target": "lock_server",
                    "argv": ["bmc", "lock_server", "-k", "6"],
                    "created_unix": 1000.0,
                },
            },
            handle,
        )
    return str(run)


class TestTail:
    def test_consumes_only_whole_lines(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        _append_raw(path, '{"a": 1}\n{"b": 2')
        tail = _Tail(path)
        assert tail.lines() == [{"a": 1}]
        # The torn record completes on the next tick.
        _append_raw(path, ', "c": 3}\n')
        assert tail.lines() == [{"b": 2, "c": 3}]
        assert tail.lines() == []

    def test_skips_corrupt_lines(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        _append_raw(path, '{"a": 1}\nnot json\n{"b": 2}\n')
        assert _Tail(path).lines() == [{"a": 1}, {"b": 2}]

    def test_missing_file_is_empty(self, tmp_path):
        assert _Tail(str(tmp_path / "absent.jsonl")).lines() == []


class TestWatchView:
    def test_folds_journal_progress(self, run_dir):
        _write(
            os.path.join(run_dir, "journal.jsonl"),
            [
                {"v": 1, "seq": 0, "kind": "header", "data": {}},
                {"v": 1, "seq": 1, "kind": "bmc.depth", "data": {"verdict": "unsat"}},
                {"v": 1, "seq": 2, "kind": "bmc.depth", "data": {"verdict": "unsat"}},
                {"v": 1, "seq": 3, "kind": "bmc.depth", "data": {"verdict": "unsat"}},
                {"v": 1, "seq": 4, "kind": "obligation", "data": {"name": "inv"}},
            ],
        )
        view = WatchView(run_dir)
        view.refresh()
        assert view.meta["command"] == "bmc"
        assert view.bmc_depth == 2  # three depth records: depths 0..2 done
        assert view.obligations == 1
        assert "header" not in view.journal_kinds

    def test_folds_trace_events(self, run_dir):
        _write(
            os.path.join(run_dir, "trace.jsonl"),
            [
                {"e": "run", "run": "abc123", "v": 1, "ts": 0.0},
                {"e": "start", "name": "induction", "id": "1", "ts": 0.1},
                {
                    "e": "end", "name": "epr.solve", "id": "2", "ts": 0.5,
                    "dur": 0.01,
                    "attrs": {"verdict": "unsat", "cached": False},
                },
                {
                    "e": "end", "name": "epr.solve", "id": "3", "ts": 0.9,
                    "dur": 0.0,
                    "attrs": {"verdict": "unsat", "cached": True},
                },
                {
                    "e": "point", "name": "ledger.split", "id": "4", "ts": 1.0,
                    "attrs": {"hits": 3, "misses": 1},
                },
                {
                    "e": "point", "name": "dispatch.crash", "id": "5",
                    "ts": 1.2, "attrs": {"query": "q0"},
                },
            ],
        )
        view = WatchView(run_dir)
        view.refresh()
        assert view.run_id == "abc123"
        assert view.engines == {"induction"}
        assert view.queries == 2 and view.cached == 1
        assert view.verdicts == {"unsat": 2}
        assert view.ledger_hits == 3 and view.ledger_misses == 1
        assert view.faults == {"dispatch.crash": 1}
        assert view.last_ts == 1.2

    def test_incremental_refresh_only_adds_new_records(self, run_dir):
        journal = os.path.join(run_dir, "journal.jsonl")
        _write(journal, [{"v": 1, "seq": 1, "kind": "houdini.round",
                          "data": {"failing": [], "unknown": []}}])
        view = WatchView(run_dir)
        view.refresh()
        assert view.houdini_round == 1
        _append_raw(
            journal,
            json.dumps({"v": 1, "seq": 2, "kind": "houdini.round",
                        "data": {"failing": [], "unknown": []}}) + "\n",
        )
        view.refresh()
        assert view.houdini_round == 2

    def test_render_mentions_progress_and_rates(self, run_dir):
        _write(
            os.path.join(run_dir, "journal.jsonl"),
            [{"v": 1, "seq": 1, "kind": "bmc.depth", "data": {}}],
        )
        _write(
            os.path.join(run_dir, "trace.jsonl"),
            [
                {"e": "run", "run": "abc123", "v": 1, "ts": 2.0},
                {
                    "e": "end", "name": "epr.solve", "id": "2", "ts": 3.0,
                    "dur": 0.01,
                    "attrs": {"verdict": "sat", "cached": False},
                },
            ],
        )
        view = WatchView(run_dir)
        view.refresh()
        text = view.render()
        assert "bmc lock_server" in text
        assert "run abc123" in text
        assert "bmc depth 0" in text
        assert "sat=1" in text
        assert "cache hit rate 0.0%" in text

    def test_eta_extrapolates_from_bound(self, run_dir):
        _write(
            os.path.join(run_dir, "journal.jsonl"),
            [
                {"v": 1, "seq": 1, "kind": "bmc.depth", "data": {}},
                {"v": 1, "seq": 2, "kind": "bmc.depth", "data": {}},
            ],
        )
        _write(
            os.path.join(run_dir, "trace.jsonl"),
            [{"e": "run", "run": "r", "v": 1, "ts": 10.0}],
        )
        view = WatchView(run_dir)
        view.refresh()
        # depths 0..1 done in 10s of a -k 6 run: >= 25s more, floor-labeled.
        assert view._eta() == ">= 25s to depth 6"

    def test_empty_run_dir_renders_placeholder(self, tmp_path):
        bare = tmp_path / "bare"
        bare.mkdir()  # no meta, no journal, no trace
        view = WatchView(str(bare))
        view.refresh()
        assert "(no journal or trace data yet)" in view.render()


class TestWatchCommand:
    def test_missing_directory_is_an_error(self, tmp_path, capsys):
        assert watch(str(tmp_path / "nope")) == 1
        assert "not a directory" in capsys.readouterr().err

    def test_once_renders_a_single_snapshot(self, run_dir, capsys):
        assert watch(run_dir, once=True) == 0
        out = capsys.readouterr().out
        assert out.count("watching") == 1
        assert "bmc lock_server" in out
