"""Per-phase profiler: collection scopes, engine tags, solver integration.

The profiler contract these tests pin down:

* phases accumulate into the active :func:`~repro.obs.profile.collect`
  scope, or publish straight to the ``query_phase_ms`` histogram when no
  scope is open;
* ``attrs_ms`` keeps sub-millisecond precision -- the hotspot report's
  ">= 95% of query wall decomposed" property depends on it;
* a real EPR query's phase timings land on its trace spans and its
  result statistics, and their sum never exceeds the spans' total wall
  (phases are disjoint, never nested);
* chaos runs (injected worker crashes) keep both verdicts and the
  phases-sum-within-wall invariant intact.
"""

import io
import json

import pytest

from repro import obs
from repro.obs import profile
from repro.logic import RelDecl, Sort, Var, vocabulary
from repro.logic import syntax as s
from repro.solver import (
    EprSolver,
    FaultPlan,
    install_cache,
    install_fault_plan,
    query_of,
    solve_queries,
)
from repro.solver.dispatch import _fork_context

needs_fork = pytest.mark.skipif(
    _fork_context() is None, reason="fork start method unavailable"
)

elem = Sort("elem")
p = RelDecl("p", (elem,))
VOCAB = vocabulary(sorts=[elem], relations=[p], functions=[])
X = Var("X", elem)

SOME_P = s.exists((X,), s.Rel(p, (X,)))
NO_P = s.forall((X,), s.not_(s.Rel(p, (X,))))


@pytest.fixture(autouse=True)
def clean_obs():
    old_tracer = obs.install_tracer(None)
    old_metrics = obs.install_metrics(None)
    old_cache = install_cache(None)
    old_profiling = profile.set_profiling(True)
    install_fault_plan(FaultPlan())
    yield
    install_fault_plan(None)
    profile.set_profiling(old_profiling)
    install_cache(old_cache)
    obs.install_metrics(old_metrics)
    obs.install_tracer(old_tracer)


def _solve_traced(queries=None):
    """Run queries under a tracer; returns (parsed events, results)."""
    sink = io.StringIO()
    obs.install_tracer(obs.Tracer(sink=sink, run_id="proftest"))
    if queries is None:
        solver = EprSolver(VOCAB)
        solver.add(SOME_P, name="f0")
        solver.add(NO_P, name="f1")
        results = [solver.check()]
    else:
        results = [r for (r,) in solve_queries(queries, jobs=2)]
    obs.install_tracer(None)
    events = [json.loads(line) for line in sink.getvalue().splitlines()]
    return events, results


def _query_end_events(events):
    """End events of epr.solve/epr.prepare spans (names live on starts)."""
    names = {e["id"]: e["name"] for e in events if e["e"] == "start"}
    return [
        e for e in events
        if e["e"] == "end"
        and names.get(e["id"]) in ("epr.solve", "epr.prepare")
    ]


def _phase_attrs(attrs):
    """phase name -> wall ms, from a span's attribute dict."""
    out = {}
    for key, value in attrs.items():
        if (
            key.startswith(profile.ATTR_PREFIX)
            and key.endswith("_ms")
            and not key.endswith("_cpu_ms")
        ):
            out[key[len(profile.ATTR_PREFIX) : -len("_ms")]] = value
    return out


class TestPhaseProfile:
    def test_add_accumulates_per_phase(self):
        prof = profile.PhaseProfile()
        prof.add("sat", 0.010, 0.008)
        prof.add("sat", 0.005, 0.004)
        prof.add("cnf", 0.001, 0.001)
        assert prof.wall["sat"] == pytest.approx(0.015)
        assert prof.counts == {"sat": 2, "cnf": 1}
        assert prof.total_wall() == pytest.approx(0.016)

    def test_attrs_ms_keeps_submillisecond_precision(self):
        prof = profile.PhaseProfile()
        prof.add("ground", 0.0004, 0.0003)
        attrs = prof.attrs_ms()
        # 400us must not truncate to 0ms: coverage accounting needs it.
        assert attrs["phase_ground_ms"] == pytest.approx(0.4)
        assert attrs["phase_ground_cpu_ms"] == pytest.approx(0.3)

    def test_phase_names_are_canonical(self):
        for name in ("normalize", "ground", "cnf", "cache", "sat",
                     "theory", "extract", "ledger", "transit"):
            assert name in profile.PHASES


class TestCollectAndPhase:
    def test_phase_inside_collect_accumulates(self):
        with profile.collect() as prof:
            with profile.phase("sat"):
                pass
            with profile.phase("sat"):
                pass
        assert prof.counts["sat"] == 2
        assert prof.wall["sat"] >= 0.0

    def test_phase_outside_collect_publishes_to_metrics(self):
        registry = obs.MetricsRegistry()
        obs.install_metrics(registry)
        with profile.engine("houdini"):
            with profile.phase("ledger"):
                pass
        key = "query_phase_ms{engine=houdini,phase=ledger}"
        assert registry.to_dict()["histograms"][key]["count"] == 1

    def test_disabled_profiling_is_inert(self):
        registry = obs.MetricsRegistry()
        obs.install_metrics(registry)
        assert profile.set_profiling(False) is True
        with profile.collect() as prof:
            with profile.phase("sat"):
                pass
        assert prof is None
        assert registry.to_dict()["histograms"] == {}

    def test_set_profiling_returns_previous(self):
        assert profile.set_profiling(False) is True
        assert profile.set_profiling(True) is False
        assert profile.profiling_enabled()

    def test_publish_feeds_scope_into_histograms(self):
        registry = obs.MetricsRegistry()
        obs.install_metrics(registry)
        prof = profile.PhaseProfile()
        prof.add("cnf", 0.002, 0.002)
        profile.publish(prof)
        key = "query_phase_ms{phase=cnf}"
        snap = registry.to_dict()["histograms"][key]
        assert snap["count"] == 1 and snap["sum"] == pytest.approx(2.0)


class TestEngineTag:
    def test_engine_scopes_and_restores(self):
        assert profile.current_engine() is None
        with profile.engine("updr"):
            assert profile.current_engine() == "updr"
            with profile.engine("bmc"):
                assert profile.current_engine() == "bmc"
            assert profile.current_engine() == "updr"
        assert profile.current_engine() is None

    def test_set_engine_is_token_based(self):
        token = profile.set_engine("induction")
        assert profile.current_engine() == "induction"
        profile._engine.reset(token)
        assert profile.current_engine() is None


class TestSolverIntegration:
    def test_phases_land_on_spans_and_sum_within_wall(self):
        events, results = _solve_traced()
        assert not results[0].satisfiable  # SOME_P & NO_P is unsat
        query_spans = _query_end_events(events)
        assert query_spans, "no query spans traced"
        total_wall_ms = sum(e["dur"] for e in query_spans) * 1000
        phase_ms = sum(
            sum(_phase_attrs(e.get("attrs", {})).values()) for e in query_spans
        )
        assert phase_ms > 0, "no phase attributes on query spans"
        # Disjoint phases never exceed the walls they decompose (allow
        # float rounding: attrs are rounded to 1us each).
        assert phase_ms <= total_wall_ms + 0.01 * len(query_spans)

    def test_phases_ride_result_statistics(self):
        solver = EprSolver(VOCAB)
        solver.add(SOME_P, name="f0")
        result = solver.check()
        phase_keys = [
            key for key in result.statistics
            if key.startswith(profile.ATTR_PREFIX)
        ]
        assert any(key == "phase_cnf_ms" for key in phase_keys)
        assert any(key == "phase_normalize_ms" for key in phase_keys)

    def test_disabled_profiling_leaves_statistics_bare(self):
        profile.set_profiling(False)
        solver = EprSolver(VOCAB)
        solver.add(SOME_P, name="f0")
        result = solver.check()
        assert not any(
            key.startswith(profile.ATTR_PREFIX) for key in result.statistics
        )


@needs_fork
class TestForkAndChaos:
    def _queries(self):
        out = []
        for index, formulas in enumerate(
            [[SOME_P, NO_P], [SOME_P], [NO_P]]
        ):
            solver = EprSolver(VOCAB)
            for findex, formula in enumerate(formulas):
                solver.add(formula, name=f"f{findex}")
            out.append(query_of(solver, name=f"q{index}"))
        return out

    def test_pool_workers_ship_phase_samples(self):
        registry = obs.MetricsRegistry()
        obs.install_metrics(registry)
        results = [r for (r,) in solve_queries(self._queries(), jobs=2)]
        assert [r.satisfiable for r in results] == [False, True, True]
        histograms = registry.to_dict()["histograms"]
        phase_keys = [k for k in histograms if k.startswith("query_phase_ms")]
        assert phase_keys, "worker deltas did not reach the parent registry"
        # Transit is measured by the parent for every delivered result.
        assert any("phase=transit" in key for key in phase_keys)

    def test_chaos_keeps_verdicts_and_profile_invariant(self):
        install_fault_plan(FaultPlan(crash=0.6, seed=11))
        registry = obs.MetricsRegistry()
        obs.install_metrics(registry)
        events, results = _solve_traced(self._queries())
        assert [r.satisfiable for r in results] == [False, True, True]
        query_spans = _query_end_events(events)
        total_wall_ms = sum(e["dur"] for e in query_spans) * 1000
        phase_ms = sum(
            sum(_phase_attrs(e.get("attrs", {})).values()) for e in query_spans
        )
        assert phase_ms <= total_wall_ms + 0.01 * len(query_spans)
        # Crashed workers took their samples with them; the loss is counted.
        counters = registry.to_dict()["counters"]
        assert counters.get("worker_crashes_total", 0) > 0
        assert counters.get("worker_events_lost_total", 0) > 0
