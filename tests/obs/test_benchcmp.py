"""The benchmark regression gate: classification, thresholds, exit codes.

The noise model under test: a timing regresses only past *both* the
relative ratio and the absolute floor, ``speedup`` keys invert, a
``holds`` flip to False and any ``unknown`` increase are fatal, and
everything else is informational.  The file-level driver must exit
nonzero exactly when a regression survives (and never in
``--report-only`` mode).
"""

import json

import pytest

from repro.obs.benchcmp import (
    DEFAULT_FLOOR_S,
    DEFAULT_MAX_RATIO,
    Finding,
    compare,
    diff_files,
    load_bench,
)


def _diff(old_sections, new_sections, **kwargs):
    return compare(
        {"sections": old_sections}, {"sections": new_sections}, **kwargs
    )


def _severities(findings):
    return [(f.severity, f.path) for f in findings]


class TestClassification:
    def test_no_drift_no_findings(self):
        sections = {"lock_server": {"wall_s": 1.0, "queries": 10}}
        assert _diff(sections, sections) == []

    def test_timing_regression_needs_ratio_and_floor(self):
        # 2x growth but only 0.1s absolute: under the 0.25s floor.
        assert _diff({"a": {"wall_s": 0.1}}, {"a": {"wall_s": 0.2}}) == []
        # Past both: regression.
        findings = _diff({"a": {"wall_s": 1.0}}, {"a": {"wall_s": 2.0}})
        assert _severities(findings) == [("regression", "a.wall_s")]
        # Large absolute growth but within the ratio: still noise.
        assert _diff({"a": {"wall_s": 10.0}}, {"a": {"wall_s": 12.0}}) == []

    def test_timing_improvement_is_informational(self):
        findings = _diff({"a": {"wall_s": 2.0}}, {"a": {"wall_s": 0.5}})
        assert _severities(findings) == [("improvement", "a.wall_s")]

    def test_ms_keys_share_the_seconds_floor(self):
        # 40ms -> 90ms is 2.25x but only 50ms absolute: under the floor.
        assert _diff({"a": {"solve_ms": 40}}, {"a": {"solve_ms": 90}}) == []
        findings = _diff({"a": {"solve_ms": 400}}, {"a": {"solve_ms": 900}})
        assert _severities(findings) == [("regression", "a.solve_ms")]

    def test_speedup_keys_invert(self):
        findings = _diff({"a": {"speedup": 3.0}}, {"a": {"speedup": 1.0}})
        assert _severities(findings) == [("regression", "a.speedup")]
        findings = _diff({"a": {"speedup": 1.0}}, {"a": {"speedup": 3.0}})
        assert _severities(findings) == [("improvement", "a.speedup")]

    def test_holds_flip_to_false_is_fatal(self):
        findings = _diff({"a": {"holds": True}}, {"a": {"holds": False}})
        assert _severities(findings) == [("regression", "a.holds")]
        # The other direction is news, not a failure.
        findings = _diff({"a": {"holds": False}}, {"a": {"holds": True}})
        assert _severities(findings) == [("info", "a.holds")]

    def test_unknown_increase_is_fatal(self):
        findings = _diff({"a": {"unknown": 0}}, {"a": {"unknown": 2}})
        assert _severities(findings) == [("regression", "a.unknown")]
        assert _diff({"a": {"unknown": 2}}, {"a": {"unknown": 0}}) == [
            Finding("info", "a.unknown", 2, 0, "counter moved")
        ]

    def test_counter_drift_is_informational(self):
        findings = _diff({"a": {"queries": 10}}, {"a": {"queries": 14}})
        assert _severities(findings) == [("info", "a.queries")]

    def test_one_sided_sections_are_informational(self):
        findings = _diff({"a": {"wall_s": 1.0}}, {"b": {"wall_s": 1.0}})
        assert _severities(findings) == [("info", "a"), ("info", "b")]

    def test_nested_sections_use_dotted_paths(self):
        findings = _diff(
            {"a": {"phases": {"cnf_ms": 1000}}},
            {"a": {"phases": {"cnf_ms": 9000}}},
        )
        assert _severities(findings) == [("regression", "a.phases.cnf_ms")]

    def test_custom_thresholds(self):
        old, new = {"a": {"wall_s": 1.0}}, {"a": {"wall_s": 1.3}}
        assert _diff(old, new) == []
        findings = _diff(old, new, max_ratio=1.1, floor_s=0.05)
        assert _severities(findings) == [("regression", "a.wall_s")]


def _bench_file(tmp_path, name, sections):
    path = tmp_path / name
    with open(path, "w") as handle:
        json.dump({"schema": 3, "git_rev": "abc", "sections": sections}, handle)
    return str(path)


class TestDiffFiles:
    def test_identical_files_exit_zero(self, tmp_path, capsys):
        path = _bench_file(tmp_path, "a.json", {"p": {"wall_s": 1.0}})
        assert diff_files(path, path) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out and "(no drift)" in out

    def test_slowdown_exits_nonzero(self, tmp_path, capsys):
        base = _bench_file(tmp_path, "a.json", {"p": {"wall_s": 1.0}})
        slow = _bench_file(tmp_path, "b.json", {"p": {"wall_s": 2.0}})
        assert diff_files(base, slow) == 1
        out = capsys.readouterr().out
        assert "verdict: REGRESSED" in out
        assert "[REGRESSION] p.wall_s" in out

    def test_report_only_always_exits_zero(self, tmp_path, capsys):
        base = _bench_file(tmp_path, "a.json", {"p": {"wall_s": 1.0}})
        slow = _bench_file(tmp_path, "b.json", {"p": {"wall_s": 2.0}})
        assert diff_files(base, slow, report_only=True) == 0
        assert "verdict: REGRESSED" in capsys.readouterr().out

    def test_default_thresholds_are_the_documented_ones(self):
        assert DEFAULT_MAX_RATIO == 1.6
        assert DEFAULT_FLOOR_S == 0.25


class TestLoadBench:
    def test_missing_file_raises_system_exit(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            load_bench(str(tmp_path / "absent.json"))

    def test_invalid_json_raises_system_exit(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{nope")
        with pytest.raises(SystemExit, match="not valid JSON"):
            load_bench(str(path))

    def test_sectionless_payload_raises_system_exit(self, tmp_path):
        path = tmp_path / "flat.json"
        path.write_text(json.dumps({"schema": 3}))
        with pytest.raises(SystemExit, match="no sections"):
            load_bench(str(path))
