"""The metrics registry and its guarded module helpers."""

from types import SimpleNamespace

import pytest

from repro import obs
from repro.obs.metrics import _key


@pytest.fixture(autouse=True)
def no_registry():
    old = obs.install_metrics(None)
    yield
    obs.install_metrics(old)


@pytest.fixture
def registry():
    registry = obs.MetricsRegistry()
    obs.install_metrics(registry)
    return registry


class TestHelpersWithoutRegistry:
    def test_all_helpers_are_noops(self):
        assert not obs.metrics_enabled()
        obs.inc("queries_total", verdict="sat")
        obs.observe("query_latency_ms", 12.0)
        obs.set_gauge("frames", 3)
        obs.count_engine_queries("bmc", [SimpleNamespace(unknown=False)])
        assert obs.metrics() is None


class TestRegistry:
    def test_label_keys_are_prometheus_style(self):
        assert _key("queries_total", {}) == "queries_total"
        assert (
            _key("queries_total", {"verdict": "sat", "engine": "bmc"})
            == "queries_total{engine=bmc,verdict=sat}"
        )

    def test_counters_and_gauges(self, registry):
        obs.inc("queries_total", verdict="sat")
        obs.inc("queries_total", 2, verdict="sat")
        obs.set_gauge("frames", 4)
        snapshot = registry.to_dict()
        assert snapshot["schema"] == 1
        assert snapshot["counters"]["queries_total{verdict=sat}"] == 3
        assert snapshot["gauges"]["frames"] == 4

    def test_histogram_snapshot(self, registry):
        for value in (0.5, 2.0, 2.0, 700.0):
            obs.observe("query_latency_ms", value)
        snap = registry.to_dict()["histograms"]["query_latency_ms"]
        assert snap["count"] == 4
        assert snap["min"] == 0.5 and snap["max"] == 700.0
        assert snap["mean"] == pytest.approx(176.125)
        assert [0.5, 1] in snap["buckets"]  # value 0.5 lands on its bound
        assert sum(count for _, count in snap["buckets"]) == 4

    def test_derived_cache_hit_rate(self, registry):
        obs.inc("cache_hits_total", 3)
        obs.inc("cache_misses_total", 1)
        assert registry.to_dict()["derived"]["cache_hit_rate"] == 0.75

    def test_derived_unknown_rate_per_engine(self, registry):
        results = [
            SimpleNamespace(unknown=False),
            SimpleNamespace(unknown=True),
            SimpleNamespace(unknown=False),
            SimpleNamespace(unknown=False),
        ]
        obs.count_engine_queries("bmc", results)
        obs.count_engine_queries("houdini", results[:1])
        derived = registry.to_dict()["derived"]
        assert derived["unknown_rate{engine=bmc}"] == 0.25
        assert derived["unknown_rate{engine=houdini}"] == 0.0

    def test_no_derived_rates_without_traffic(self, registry):
        assert registry.to_dict()["derived"] == {}
