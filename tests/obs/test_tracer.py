"""Tracer: schema round-trip, re-parenting, worker forwarding, chaos.

The trace-event contract these tests pin down:

* every emitted line is a JSON object with an ``e`` kind and the keys
  documented in :mod:`repro.obs.tracer`;
* the events of one run -- including those buffered in forked dispatch
  workers and shipped back over the result pipe -- re-parent into a
  single tree;
* with no tracer installed every instrumentation call is a no-op, and
  tracing a run (even a chaos run with injected worker faults) never
  changes its verdicts.
"""

import io
import json

import pytest

from repro import obs
from repro.logic import RelDecl, Sort, Var, vocabulary
from repro.logic import syntax as s
from repro.solver import (
    EprSolver,
    FaultPlan,
    install_cache,
    install_fault_plan,
    query_of,
    solve_queries,
)
from repro.solver.dispatch import _fork_context

needs_fork = pytest.mark.skipif(
    _fork_context() is None, reason="fork start method unavailable"
)

elem = Sort("elem")
p = RelDecl("p", (elem,))
q = RelDecl("q", (elem,))
VOCAB = vocabulary(sorts=[elem], relations=[p, q], functions=[])
X = Var("X", elem)

SOME_P = s.exists((X,), s.Rel(p, (X,)))
NO_P = s.forall((X,), s.not_(s.Rel(p, (X,))))
SOME_Q = s.exists((X,), s.Rel(q, (X,)))
NO_Q = s.forall((X,), s.not_(s.Rel(q, (X,))))

QUERIES = [
    [SOME_P, NO_P],  # unsat
    [SOME_P, SOME_Q],  # sat
    [s.and_(SOME_Q, NO_Q)],  # unsat
]
EXPECTED = [False, True, False]


@pytest.fixture(autouse=True)
def clean_obs():
    """Tracer, metrics, faults, and cache must not leak between tests.

    Installing the empty FaultPlan (hard "no faults") masks any ambient
    ``REPRO_FAULT`` -- span-count assertions here are exact, so injected
    retries must be opt-in per test, not inherited from the environment.
    """
    old_tracer = obs.install_tracer(None)
    old_metrics = obs.install_metrics(None)
    old_cache = install_cache(None)
    install_fault_plan(FaultPlan())
    yield
    install_fault_plan(None)
    install_cache(old_cache)
    obs.install_metrics(old_metrics)
    obs.install_tracer(old_tracer)


def _queries():
    out = []
    for index, formulas in enumerate(QUERIES):
        solver = EprSolver(VOCAB)
        for findex, formula in enumerate(formulas):
            solver.add(formula, name=f"f{findex}")
        out.append(query_of(solver, name=f"q{index}"))
    return out


class TestDisabled:
    """With no tracer installed, instrumentation is free and inert."""

    def test_span_returns_shared_null_object(self):
        assert obs.span("a") is obs.span("b")
        with obs.span("a") as sp:
            sp.set(anything="goes")
            assert sp.id is None

    def test_points_and_manual_spans_are_noops(self):
        obs.point("dispatch.retry", attempt=1)
        assert obs.current_span_id() is None
        ref = obs.begin_span("dispatch.attempt")
        assert ref is None
        obs.finish_span(ref, outcome="ok")  # must tolerate None

    def test_worker_hooks_are_noops(self):
        obs.enter_worker()
        assert obs.active_tracer() is None
        assert obs.drain_worker() is None
        obs.forward_events(None, "1")
        obs.forward_events([{"e": "point", "id": "x", "parent": None}], "1")


class TestEventSchema:
    """Events written to a file sink parse line-by-line and rebuild."""

    def _traced(self):
        sink = io.StringIO()
        tracer = obs.Tracer(sink=sink, run_id="testrun")
        obs.install_tracer(tracer)
        tracer.emit_header(["check", "lock_server"])
        with obs.span("induction", conjectures=2) as outer:
            with obs.span("epr.solve") as inner:
                inner.set(verdict="unsat", cached=False)
            obs.point("grounding.universe", terms=4)
            outer.set(holds=True)
        obs.install_tracer(None)
        return [json.loads(line) for line in sink.getvalue().splitlines()]

    def test_round_trip_and_required_keys(self):
        events = self._traced()
        header = events[0]
        assert header["e"] == "run"
        assert header["run"] == "testrun"
        assert header["v"] == obs.SCHEMA_VERSION
        assert header["argv"] == ["check", "lock_server"]
        for event in events[1:]:
            assert event["e"] in ("start", "end", "point")
            assert isinstance(event["ts"], float) and event["ts"] >= 0.0
            assert isinstance(event["id"], str)
            if event["e"] in ("start", "point"):
                assert "name" in event and "parent" in event
            if event["e"] == "end":
                assert event["dur"] >= 0.0

    def test_rebuilds_into_single_tree_with_merged_attrs(self):
        events = self._traced()
        roots, nodes, header = obs.build_tree(events)
        assert header["run"] == "testrun"
        assert len(roots) == 1
        induction = roots[0]
        assert induction.name == "induction"
        # start attrs and end attrs (Span.set) are merged on the node
        assert induction.attrs == {"conjectures": 2, "holds": True}
        assert [child.name for child in induction.children] == [
            "epr.solve",
            "grounding.universe",
        ]
        solve, universe = induction.children
        assert solve.kind == "span" and solve.attrs["verdict"] == "unsat"
        assert universe.kind == "point" and universe.attrs["terms"] == 4
        assert obs.tree_depth(roots) == 2

    def test_exception_recorded_on_end_event(self):
        sink = []
        obs.install_tracer(obs.Tracer(sink=sink))
        with pytest.raises(ValueError):
            with obs.span("houdini"):
                raise ValueError("boom")
        obs.install_tracer(None)
        end = next(e for e in sink if e["e"] == "end")
        assert end["error"] == "ValueError"
        roots, _, _ = obs.build_tree(sink)
        assert roots[0].error == "ValueError"

    def test_orphaned_events_are_adopted_as_roots(self):
        # A worker killed before its parent span closed: the child's
        # parent ID never appears.  The report must still cover it.
        events = [
            {"e": "start", "ts": 0.1, "id": "w9.1", "parent": "gone",
             "name": "worker"},
            {"e": "end", "ts": 0.2, "id": "w9.1", "dur": 0.1},
        ]
        roots, nodes, _ = obs.build_tree(events)
        assert [root.id for root in roots] == ["w9.1"]


class TestWorkerForwarding:
    """enter_worker / drain_worker / forward_events, simulated in-process."""

    def test_forwarded_events_re_parent_into_one_tree(self):
        sink = []
        tracer = obs.Tracer(sink=sink, run_id="fwd")
        obs.install_tracer(tracer)
        tracer.emit_header()
        ref = obs.begin_span("dispatch.attempt", query="q0", attempt=0)
        # -- what the forked child does:
        obs.enter_worker()
        worker_tracer = obs.active_tracer()
        assert worker_tracer is not tracer
        assert worker_tracer.run_id == "fwd"  # correlation ID survives
        with obs.span("worker", query="q0"):
            with obs.span("epr.solve") as sp:
                sp.set(verdict="unsat")
        shipped = obs.drain_worker()
        # -- back in the parent:
        obs.install_tracer(tracer)
        obs.forward_events(shipped, ref.id)
        obs.finish_span(ref, outcome="ok")
        obs.install_tracer(None)

        assert all("id" not in e or "." in e["id"] for e in shipped), (
            "worker span IDs must carry the w<pid>. prefix"
        )
        roots, nodes, _ = obs.build_tree(sink)
        assert len(roots) == 1
        attempt = roots[0]
        assert attempt.name == "dispatch.attempt"
        assert attempt.attrs["outcome"] == "ok"
        (worker,) = attempt.children
        assert worker.name == "worker"
        (solve,) = worker.children
        assert solve.name == "epr.solve" and solve.attrs["verdict"] == "unsat"
        assert obs.tree_depth(roots) == 3

    def test_drain_is_destructive(self):
        obs.install_tracer(obs.Tracer(sink=[], run_id="x"))
        obs.enter_worker()
        obs.point("sat.solve")
        first = obs.drain_worker()
        assert len(first) == 1
        assert obs.drain_worker() == []
        obs.install_tracer(None)


@needs_fork
class TestDispatchIntegration:
    """Real forked workers: traces forwarded, verdicts untouched."""

    def test_traced_parallel_run_matches_untraced(self):
        baseline = solve_queries(_queries(), jobs=2)
        sink = []
        obs.install_tracer(obs.Tracer(sink=sink))
        traced = solve_queries(_queries(), jobs=2)
        obs.install_tracer(None)
        assert [r.satisfiable for (r,) in traced] == EXPECTED
        assert [r.verdict for (r,) in traced] == [
            r.verdict for (r,) in baseline
        ]

        roots, nodes, _ = obs.build_tree(sink)
        attempts = [n for n in nodes.values() if n.name == "dispatch.attempt"]
        workers = [n for n in nodes.values() if n.name == "worker"]
        assert len(attempts) == len(QUERIES)
        assert len(workers) == len(QUERIES)
        for worker in workers:
            assert worker.parent is not None
            assert worker.parent.name == "dispatch.attempt"
            assert any(child.name == "epr.solve" for child in worker.children)

    def test_chaos_run_with_tracing_keeps_verdicts(self):
        """ISSUE acceptance: tracing must not perturb REPRO_FAULT verdicts."""
        baseline = solve_queries(_queries(), jobs=2)
        install_fault_plan(FaultPlan(crash=0.3, seed=1))
        sink = []
        obs.install_tracer(obs.Tracer(sink=sink))
        chaotic = solve_queries(_queries(), jobs=2)
        obs.install_tracer(None)
        install_fault_plan(None)
        assert [r.verdict for (r,) in chaotic] == [
            r.verdict for (r,) in baseline
        ]
        assert not any(r.unknown for (r,) in chaotic)
        # The trace is still a coherent forest even with crashed attempts.
        roots, nodes, _ = obs.build_tree(sink)
        assert nodes and roots
