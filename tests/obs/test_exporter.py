"""Metrics exporter: exposition format, HTTP endpoints, scrape-during-run.

Pins the Prometheus text-exposition contract (format 0.0.4): one
``# TYPE`` declaration per metric name, double-quoted label values,
*cumulative* histogram buckets ending in a ``+Inf`` bucket equal to the
count, and ``_sum``/``_count`` series.  The HTTP side is exercised over
a real loopback socket, including a scrape racing a live fork-pool run
-- every mid-run scrape must parse, and chaos (injected worker crashes)
must change neither verdicts nor the exposition's validity.
"""

import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.exporter import CONTENT_TYPE, MetricsServer, render_exposition
from repro.logic import RelDecl, Sort, Var, vocabulary
from repro.logic import syntax as s
from repro.solver import (
    EprSolver,
    FaultPlan,
    install_cache,
    install_fault_plan,
    query_of,
    solve_queries,
)
from repro.solver.dispatch import _fork_context

needs_fork = pytest.mark.skipif(
    _fork_context() is None, reason="fork start method unavailable"
)

#: a sample line: name, optional {labels}, space, value
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" -?[0-9.+eE]+(\+Inf)?$"
)


def assert_parseable(text):
    """Every line is a comment or a well-formed sample; buckets cumulate."""
    bucket_runs = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert line.startswith("# TYPE "), line
            continue
        assert _SAMPLE.match(line), f"malformed sample line: {line!r}"
        if "_bucket{" in line:
            series = line.rsplit(" ", 1)
            key = re.sub(r'le="[^"]*",?', "", series[0])
            run = bucket_runs.setdefault(key, [])
            run.append(float(series[1]))
    for key, counts in bucket_runs.items():
        assert counts == sorted(counts), f"non-cumulative buckets: {key}"


@pytest.fixture(autouse=True)
def clean_obs():
    old_metrics = obs.install_metrics(None)
    old_cache = install_cache(None)
    install_fault_plan(FaultPlan())
    yield
    install_fault_plan(None)
    install_cache(old_cache)
    obs.install_metrics(old_metrics)


@pytest.fixture
def registry():
    registry = obs.MetricsRegistry()
    obs.install_metrics(registry)
    return registry


def _fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.headers, response.read().decode()


class TestRenderExposition:
    def test_counters_gauges_and_type_lines(self, registry):
        obs.inc("queries_total", 3, verdict="unsat")
        obs.inc("queries_total", 1, verdict="sat")
        obs.set_gauge("frames", 4)
        text = render_exposition(registry)
        assert text.count("# TYPE queries_total counter") == 1
        assert 'queries_total{verdict="unsat"} 3' in text
        assert 'queries_total{verdict="sat"} 1' in text
        assert "# TYPE frames gauge" in text
        assert "\nframes 4\n" in text or text.startswith("frames 4\n")
        assert_parseable(text)

    def test_histogram_buckets_are_cumulative_with_inf(self, registry):
        for value in (0.5, 2.0, 700.0):
            obs.observe("query_latency_ms", value, engine="bmc")
        text = render_exposition(registry)
        assert "# TYPE query_latency_ms histogram" in text
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("query_latency_ms_bucket")
        ]
        assert bucket_lines, text
        # Cumulative: the +Inf bucket closes the series at the count.
        assert bucket_lines[-1].endswith(" 3")
        assert 'le="+Inf"' in bucket_lines[-1]
        assert 'engine="bmc"' in bucket_lines[0]
        assert 'query_latency_ms_count{engine="bmc"} 3' in text
        assert_parseable(text)

    def test_empty_histogram_still_has_inf_bucket(self, registry):
        registry.histogram_by_key("query_latency_ms")
        text = render_exposition(registry)
        assert 'query_latency_ms_bucket{le="+Inf"} 0' in text
        assert_parseable(text)

    def test_derived_rates_render_as_prefixed_gauges(self, registry):
        obs.inc("cache_hits_total", 3)
        obs.inc("cache_misses_total", 1)
        text = render_exposition(registry)
        assert "# TYPE repro_derived_cache_hit_rate gauge" in text
        assert "repro_derived_cache_hit_rate 0.75" in text
        assert_parseable(text)

    def test_empty_registry_renders_empty_document(self, registry):
        assert render_exposition(registry) == "\n"


class TestMetricsServer:
    def test_endpoints_over_loopback(self, registry):
        obs.inc("queries_total", 2, verdict="unsat")
        server = MetricsServer(port=0)
        port = server.start()
        try:
            assert server.url == f"http://127.0.0.1:{port}/metrics"
            status, headers, text = _fetch(server.url)
            assert status == 200
            assert headers["Content-Type"] == CONTENT_TYPE
            assert 'queries_total{verdict="unsat"} 2' in text
            assert_parseable(text)
            status, headers, body = _fetch(
                f"http://127.0.0.1:{port}/metrics.json"
            )
            assert status == 200
            assert json.loads(body)["counters"] == {
                "queries_total{verdict=unsat}": 2
            }
            status, _, body = _fetch(f"http://127.0.0.1:{port}/healthz")
            assert status == 200 and body == "ok\n"
        finally:
            server.stop()

    def test_unknown_path_is_404(self, registry):
        server = MetricsServer(port=0)
        port = server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _fetch(f"http://127.0.0.1:{port}/nope")
            assert excinfo.value.code == 404
        finally:
            server.stop()

    def test_no_registry_is_503(self):
        server = MetricsServer(port=0)
        port = server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _fetch(f"http://127.0.0.1:{port}/metrics")
            assert excinfo.value.code == 503
        finally:
            server.stop()

    def test_follows_registry_swaps(self):
        first = obs.MetricsRegistry()
        obs.install_metrics(first)
        server = MetricsServer(port=0)
        port = server.start()
        try:
            obs.inc("frames_total", 1)
            _, _, text = _fetch(server.url)
            assert "frames_total 1" in text
            second = obs.MetricsRegistry()
            obs.install_metrics(second)
            obs.inc("frames_total", 5)
            _, _, text = _fetch(server.url)
            assert "frames_total 5" in text
        finally:
            server.stop()


elem = Sort("elem")
p = RelDecl("p", (elem,))
VOCAB = vocabulary(sorts=[elem], relations=[p], functions=[])
X = Var("X", elem)
SOME_P = s.exists((X,), s.Rel(p, (X,)))
NO_P = s.forall((X,), s.not_(s.Rel(p, (X,))))


def _queries():
    out = []
    for index, formulas in enumerate([[SOME_P, NO_P], [SOME_P], [NO_P]]):
        solver = EprSolver(VOCAB)
        for findex, formula in enumerate(formulas):
            solver.add(formula, name=f"f{findex}")
        out.append(query_of(solver, name=f"q{index}"))
    return out


@needs_fork
class TestScrapeDuringRun:
    def _run_with_scraper(self, jobs=2):
        """Solve on a fork pool while a thread scrapes continuously."""
        server = MetricsServer(port=0)
        port = server.start()
        scrapes = []
        stop = threading.Event()

        def scraper():
            while not stop.is_set():
                try:
                    _, _, text = _fetch(f"http://127.0.0.1:{port}/metrics")
                    scrapes.append(text)
                except (urllib.error.URLError, OSError):
                    pass

        thread = threading.Thread(target=scraper, daemon=True)
        thread.start()
        try:
            results = [r for (r,) in solve_queries(_queries(), jobs=jobs)]
        finally:
            stop.set()
            thread.join(timeout=10)
            server.stop()
        return results, scrapes

    def test_mid_run_scrapes_parse_and_include_pool_metrics(self):
        registry = obs.MetricsRegistry()
        obs.install_metrics(registry)
        results, scrapes = self._run_with_scraper()
        assert [r.satisfiable for r in results] == [False, True, True]
        assert scrapes, "scraper never reached the endpoint"
        for text in scrapes:
            assert_parseable(text)
        final = render_exposition(registry)
        assert 'queries_total{verdict="unsat"} 1' in final
        assert "dispatched_total 3" in final
        assert 'phase="transit"' in final

    def test_chaos_run_keeps_verdicts_and_valid_exposition(self):
        install_fault_plan(FaultPlan(crash=0.6, seed=11))
        registry = obs.MetricsRegistry()
        obs.install_metrics(registry)
        results, scrapes = self._run_with_scraper()
        assert [r.satisfiable for r in results] == [False, True, True]
        for text in scrapes:
            assert_parseable(text)
        counters = registry.to_dict()["counters"]
        assert counters.get("worker_crashes_total", 0) > 0
        assert counters.get("worker_events_lost_total", 0) > 0
        assert_parseable(render_exposition(registry))
