"""End-to-end: ``--trace``/``--metrics`` through the CLI, then ``report``.

The ISSUE acceptance criteria live here: a traced run writes valid JSONL
that re-parents into one tree covering the engine -> phase -> query
layers, ``repro report`` renders the Fig. 14-shaped breakdown from it,
and the metrics snapshot carries the documented counters and rates.
"""

import json
import pathlib

import pytest

from repro import obs
from repro.cli import main
from repro.solver import QueryCache, install_cache

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
LOCK_SERVER_RML = REPO_ROOT / "examples" / "lock_server.rml"


@pytest.fixture(autouse=True)
def clean_obs():
    """Fresh query cache per test (so latency histograms see real solves);
    main() tears its own obs layers down -- assert nothing leaks anyway."""
    old_cache = install_cache(QueryCache())
    yield
    install_cache(old_cache)
    assert obs.active_tracer() is None
    assert obs.metrics() is None


def _run_traced(tmp_path, argv):
    trace = tmp_path / "trace.jsonl"
    metrics = tmp_path / "metrics.json"
    code = main(argv + ["--trace", str(trace), "--metrics", str(metrics)])
    assert code == 0
    return trace, metrics


class TestTracedCheck:
    def test_check_produces_single_tree_spanning_all_layers(self, tmp_path, capsys):
        trace, metrics = _run_traced(tmp_path, ["check", "lock_server"])
        events = obs.load_trace(str(trace))  # raises on malformed JSONL
        roots, nodes, header = obs.build_tree(events)
        assert header["v"] == obs.SCHEMA_VERSION and header["run"]
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "repro.check"
        assert root.attrs["protocol"] == "lock_server"
        assert root.attrs["exit_code"] == 0
        assert obs.tree_depth(roots) >= 4  # command -> engine -> phase -> query
        names = {node.name for node in nodes.values()}
        assert "induction" in names
        assert "induction.obligation" in names
        assert "epr.solve" in names
        # every query span sits under the induction engine span
        queries = [n for n in nodes.values() if n.name == obs.QUERY_SPAN]
        assert queries
        for query in queries:
            assert any(a.name == "induction" for a in query.ancestors())

    def test_metrics_snapshot_schema(self, tmp_path, capsys):
        _, metrics = _run_traced(tmp_path, ["check", "lock_server"])
        snapshot = json.loads(metrics.read_text())
        assert snapshot["schema"] == 1
        counters = snapshot["counters"]
        assert counters["queries_total{verdict=unsat}"] > 0
        assert counters["engine_queries_total{engine=induction}"] > 0
        assert "cache_hit_rate" in snapshot["derived"]
        assert snapshot["derived"]["unknown_rate{engine=induction}"] == 0.0
        assert snapshot["histograms"]["query_latency_ms"]["count"] > 0

    def test_report_renders_breakdown(self, tmp_path, capsys):
        trace, _ = _run_traced(tmp_path, ["check", "lock_server"])
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "trace report: run" in out
        assert "per-protocol query breakdown" in out
        assert "lock_server" in out and "induction" in out
        assert "per-phase breakdown" in out
        assert "epr.solve" in out
        assert "slowest queries" in out


class TestTracedVerify:
    def test_verify_bundled_example(self, tmp_path, capsys):
        assert LOCK_SERVER_RML.exists()
        trace, _ = _run_traced(
            tmp_path, ["verify", str(LOCK_SERVER_RML), "-k", "2"]
        )
        events = obs.load_trace(str(trace))
        roots, nodes, _ = obs.build_tree(events)
        assert len(roots) == 1 and roots[0].name == "repro.verify"
        names = {node.name for node in nodes.values()}
        assert "bmc" in names  # verify runs BMC before induction
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "lock_server.rml" in out


class TestProgressAndErrors:
    def test_progress_echoes_spans_to_stderr(self, capsys):
        assert main(["check", "lock_server", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "> repro.check" in err
        assert "< done in" in err

    def test_report_missing_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot read trace" in capsys.readouterr().err

    def test_report_malformed_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"e": "run"}\nnot json\n')
        assert main(["report", str(bad)]) == 1
        assert "malformed trace" in capsys.readouterr().err

    def test_untraced_run_stays_untraced(self, capsys):
        assert main(["check", "lock_server"]) == 0
        assert obs.active_tracer() is None
