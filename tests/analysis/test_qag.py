"""Quantifier-alternation-graph construction, polarity, and cycle report."""

from repro.analysis import build_qag, formula_edges, qag_diagnostics
from repro.logic import (
    App,
    FuncDecl,
    Rel,
    RelDecl,
    Sort,
    Var,
    exists,
    forall,
    iff,
    implies,
    not_,
)

node = Sort("node")
ident = Sort("id")
p = RelDecl("p", (node,))
le = RelDecl("le", (ident, ident))
idn = FuncDecl("idn", (node,), ident)
back = FuncDecl("back", (ident,), node)
N, M = Var("N", node), Var("M", node)
I, J = Var("I", ident), Var("J", ident)


def _edges(formula, **kwargs):
    return [(e.src.name, e.dst.name, e.kind) for e in formula_edges(formula, **kwargs)]


class TestFunctionEdges:
    def test_function_occurrence_yields_edge(self):
        formula = forall((N,), Rel(le, (App(idn, (N,)), App(idn, (N,)))))
        assert ("node", "id", "function") in _edges(formula)

    def test_constants_yield_no_edges(self):
        c = FuncDecl("c", (), node)
        assert _edges(Rel(p, (App(c, ()),))) == []


class TestAlternationEdges:
    def test_forall_exists_yields_edge(self):
        formula = forall((N,), exists((M,), Rel(p, (M,))))
        assert ("node", "node", "alternation") in _edges(formula)

    def test_exists_forall_yields_no_edge(self):
        formula = exists((N,), forall((M,), Rel(p, (M,))))
        assert _edges(formula) == []

    def test_cross_sort_alternation(self):
        formula = forall((N,), exists((I,), Rel(le, (I, I))))
        assert _edges(formula) == [("node", "id", "alternation")]

    def test_negation_flips_polarity(self):
        # ~(exists M. forall N. p(N)) is a universal-then-existential.
        formula = not_(exists((M,), forall((N,), Rel(p, (N,)))))
        assert ("node", "node", "alternation") in _edges(formula)

    def test_implies_lhs_is_negative(self):
        # (forall M. exists N. p(N)) -> q: the AE antecedent flips to EA.
        formula = implies(forall((M,), exists((N,), Rel(p, (N,)))), Rel(p, (M,)))
        assert ("node", "node", "alternation") not in _edges(formula)

    def test_iff_counts_both_polarities(self):
        formula = iff(forall((M,), exists((N,), Rel(p, (N,)))), Rel(p, (M,)))
        kinds = _edges(formula)
        assert ("node", "node", "alternation") in kinds

    def test_edge_provenance_names_quantifiers(self):
        formula = forall((N,), exists((M,), Rel(p, (M,))))
        (edge,) = formula_edges(formula)
        assert "exists M:node" in edge.detail
        assert "forall N:node" in edge.detail


class TestCycles:
    def test_acyclic_graph_has_no_cycles(self):
        formula = forall((N,), exists((I,), Rel(le, (I, I))))
        assert build_qag([("vc", formula)]).cycles() == []

    def test_self_loop_reported(self):
        formula = forall((N,), exists((M,), Rel(p, (M,))))
        cycles = build_qag([("vc", formula)]).cycles()
        assert len(cycles) == 1
        (edge,) = cycles[0]
        assert edge.src == node and edge.dst == node

    def test_two_sort_function_cycle(self):
        # idn : node -> id and back : id -> node used together.
        formula = forall(
            (N,), Rel(p, (App(back, (App(idn, (N,)),)),))
        )
        cycles = build_qag([("vc", formula)]).cycles()
        assert len(cycles) == 1
        sorts = {edge.src.name for edge in cycles[0]}
        assert sorts == {"node", "id"}

    def test_mixed_alternation_function_cycle(self):
        # forall N:node. exists I:id -> edge node->id; back: id->node closes it.
        formula = forall(
            (N,), exists((I,), Rel(p, (App(back, (I,)),)))
        )
        cycles = build_qag([("vc", formula)]).cycles()
        assert len(cycles) == 1
        kinds = {edge.kind for edge in cycles[0]}
        assert kinds == {"alternation", "function"}

    def test_parallel_edges_deduplicated(self):
        formula = forall((N,), exists((M,), Rel(p, (M,))))
        qag = build_qag([("vc1", formula), ("vc2", formula)])
        assert len(qag.cycles()) == 1


class TestQagDiagnostics:
    def test_cycle_diagnostic_names_sorts_and_edge(self):
        formula = forall((N,), exists((M,), Rel(p, (M,))))
        (diagnostic,) = qag_diagnostics([("no abort via body", formula)])
        assert diagnostic.code == "RML201"
        assert "node -> node" in diagnostic.message
        provenance = diagnostic.notes[0].message
        assert "exists M:node" in provenance
        assert "no abort via body" in provenance

    def test_clean_formulas_yield_nothing(self):
        formula = exists((N,), forall((M,), Rel(p, (M,))))
        assert qag_diagnostics([("vc", formula)]) == ()
