"""Pre-flight decidability analysis: fail fast before any solver query.

The acceptance scenario from the issue: mutate a bundled protocol so a VC
leaves the decidable fragment, run ``repro check``, and require exit code
2, an RML201 diagnostic naming the sorts and the offending edge, and a
metrics dump with **zero** ``query_latency_ms`` samples (the solver never
started).
"""

import dataclasses
import json

import pytest

from repro import cli
from repro.analysis.diagnostics import Severity
from repro.analysis.preflight import preflight_program, vc_formulas
from repro.logic import Exists, Forall, Rel, Var, exists, forall
from repro.protocols import ALL_PROTOCOLS
from repro.rml.ast import Assume, Seq


def _mutated_lock_server():
    """lock_server with a forall-exists assume smuggled into the body."""
    bundle = ALL_PROTOCOLS["lock_server"].build()
    program = bundle.program
    client = next(s for s in program.vocab.sorts if s.name == "client")
    lock_msg = next(r for r in program.vocab.relations if r.name == "lock_msg")
    X, Y = Var("X", client), Var("Y", client)
    bad = Assume(forall((X,), exists((Y,), Rel(lock_msg, (Y,)))))
    mutated = dataclasses.replace(program, body=Seq((bad, program.body)))
    return dataclasses.replace(bundle, program=mutated)


class _FakeModule:
    def __init__(self, bundle):
        self._bundle = bundle

    def build(self):
        return self._bundle


@pytest.fixture
def bad_lock(monkeypatch):
    monkeypatch.setitem(cli.ALL_PROTOCOLS, "bad_lock", _FakeModule(_mutated_lock_server()))
    return "bad_lock"


class TestPreflightProgram:
    def test_clean_protocol_has_no_errors(self):
        bundle = ALL_PROTOCOLS["lock_server"].build()
        diagnostics = preflight_program(
            bundle.program, tuple(bundle.safety) + tuple(bundle.invariant)
        )
        assert not any(d.severity is Severity.ERROR for d in diagnostics)

    def test_mutated_protocol_reports_qag_cycle(self, bad_lock):
        bundle = cli.ALL_PROTOCOLS[bad_lock].build()
        diagnostics = preflight_program(
            bundle.program, tuple(bundle.safety) + tuple(bundle.invariant)
        )
        codes = {d.code for d in diagnostics}
        assert "RML003" in codes  # the assume itself is out of fragment
        assert "RML201" in codes  # and it induces an alternation cycle
        (cycle,) = [d for d in diagnostics if d.code == "RML201"]
        assert "client -> client" in cycle.message
        provenance = " ".join(note.message for note in cycle.notes)
        assert "exists" in provenance and "forall" in provenance

    def test_vcs_cover_obligations_and_axioms(self):
        bundle = ALL_PROTOCOLS["leader_election"].build()
        labeled = vc_formulas(bundle.program, tuple(bundle.safety))
        labels = [label for label, _ in labeled]
        assert any(label.startswith("axiom") for label in labels)
        assert any("abort" in label for label in labels)


class TestCheckFailsFast:
    def test_exit_2_and_zero_solver_queries(self, bad_lock, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        code = cli.main(["check", bad_lock, "--metrics", str(metrics_path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "RML201" in err
        assert "client -> client" in err
        assert "refusing to start the solver" in err

        dump = json.loads(metrics_path.read_text())
        histograms = dump.get("histograms", {})
        latency = histograms.get("query_latency_ms", {"count": 0})
        assert latency["count"] == 0
        counters = dump.get("counters", {})
        assert counters.get("analysis_preflight_total") == 1
        assert counters.get("analysis_preflight_blocked") == 1

    def test_no_preflight_overrides(self, bad_lock, capsys):
        # With the pre-flight disabled the program reaches the solver, which
        # then trips over the fragment violation itself -- proving the gate
        # was bypassed (and why failing fast with a source span is nicer).
        from repro.logic.transform import NotInFragment

        with pytest.raises(NotInFragment):
            cli.main(["check", bad_lock, "--no-preflight"])
        assert "refusing to start the solver" not in capsys.readouterr().err

    def test_clean_check_passes_preflight(self, capsys):
        code = cli.main(["check", "lock_server"])
        assert code == 0
        assert "refusing" not in capsys.readouterr().err


class TestBmcFailsFast:
    def test_exit_2_before_solving(self, bad_lock, capsys):
        code = cli.main(["bmc", bad_lock, "-k", "3"])
        assert code == 2
        assert "RML201" in capsys.readouterr().err


class TestStratificationMutation:
    def test_function_cycle_detected(self):
        # A two-sort function cycle broken stratification: f : a -> b and
        # g : b -> a used in one axiom under a quantifier.
        from repro.rml.parser import parse_program

        source = """program cyclic
sort a
sort b
function f : a -> b
function g : b -> a
relation r : a
axiom loop: forall X:a. r(g(f(X)))
"""
        program = parse_program(source, check=False)
        diagnostics = preflight_program(program)
        (cycle,) = [d for d in diagnostics if d.code == "RML201"]
        assert "a" in cycle.message and "b" in cycle.message
        provenance = " ".join(note.message for note in cycle.notes)
        assert "function f" in provenance and "function g" in provenance
