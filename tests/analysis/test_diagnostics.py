"""Diagnostics engine: collect-all sink, rendering, JSON/SARIF output."""

import json

import pytest

from repro.analysis import (
    CODES,
    Diagnostics,
    Note,
    Severity,
    render_text,
    to_json,
    to_sarif,
)
from repro.analysis.sarif import sarif_log
from repro.logic.lexer import Span


class TestSink:
    def test_collects_all(self):
        sink = Diagnostics()
        sink.emit("RML102", "unused relation 'r'")
        sink.emit("RML002", "axiom 'a' is not closed")
        sink.emit("RML104", "shadowed binder")
        assert len(sink) == 3

    def test_default_severity_from_registry(self):
        sink = Diagnostics()
        error = sink.emit("RML002", "not closed")
        warning = sink.emit("RML104", "shadowed")
        assert error.severity is Severity.ERROR
        assert warning.severity is Severity.WARNING

    def test_unregistered_code_rejected(self):
        with pytest.raises(KeyError):
            Diagnostics().emit("RML999", "nope")

    def test_items_sorted_by_position(self):
        sink = Diagnostics()
        sink.emit("RML104", "later", span=Span(9, 1, 9, 5))
        sink.emit("RML104", "earlier", span=Span(2, 3, 2, 7))
        assert [d.message for d in sink.items] == ["earlier", "later"]

    def test_has_errors(self):
        sink = Diagnostics()
        sink.emit("RML104", "warn only")
        assert not sink.has_errors
        sink.emit("RML002", "an error")
        assert sink.has_errors

    def test_origin_tagging(self):
        sink = Diagnostics("file.rml")
        diagnostic = sink.emit("RML104", "warn")
        assert diagnostic.origin == "file.rml"


class TestRenderText:
    def test_compiler_style_header(self):
        sink = Diagnostics("toy.rml")
        diagnostic = sink.emit("RML002", "axiom 'a' is not closed", span=Span(3, 8, 3, 12))
        text = render_text(diagnostic)
        assert text.startswith("toy.rml:3:8: error[RML002]: axiom 'a' is not closed")

    def test_source_excerpt_with_caret(self):
        source = "line one\naxiom a: p(X)\nline three"
        sink = Diagnostics("toy.rml")
        diagnostic = sink.emit("RML002", "not closed", span=Span(2, 10, 2, 14))
        text = render_text(diagnostic, source)
        assert "axiom a: p(X)" in text
        caret_line = text.splitlines()[2]
        assert caret_line.endswith("^~~~")
        # The caret starts under column 10 of the excerpt.
        assert caret_line.index("^") > caret_line.index("|")

    def test_notes_rendered(self):
        sink = Diagnostics()
        diagnostic = sink.emit(
            "RML201",
            "cycle",
            notes=(Note("edge a -> b", Span(1, 1, 1, 2)), Note("spanless note")),
        )
        text = render_text(diagnostic)
        assert "note: 1:1: edge a -> b" in text
        assert "note: spanless note" in text


class TestMachineFormats:
    def _sample(self):
        sink = Diagnostics("toy.rml")
        sink.emit("RML002", "not closed", span=Span(2, 3, 2, 9))
        sink.emit(
            "RML104",
            "shadowed",
            span=Span(5, 1, 5, 4),
            notes=(Note("outer binder here", Span(1, 1, 1, 2)),),
        )
        return sink.items

    def test_json_roundtrip(self):
        data = json.loads(to_json(self._sample()))
        assert data["schema"] == 1
        assert len(data["diagnostics"]) == 2
        first = data["diagnostics"][0]
        assert first["code"] == "RML002"
        assert first["severity"] == "error"
        assert first["span"] == {"line": 2, "col": 3, "end_line": 2, "end_col": 9}

    def test_sarif_shape(self):
        log = sarif_log(self._sample())
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert rule_ids == ["RML002", "RML104"]
        results = run["results"]
        assert results[0]["level"] == "error"
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2 and region["startColumn"] == 3
        assert results[1]["relatedLocations"][0]["message"]["text"] == "outer binder here"

    def test_sarif_parses_as_json(self):
        json.loads(to_sarif(self._sample()))

    def test_every_code_has_severity_and_description(self):
        for code, (severity, description) in CODES.items():
            assert isinstance(severity, Severity)
            assert description
