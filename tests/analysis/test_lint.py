"""Lint rules (RML101-107) and the collect-all acceptance property."""

import pytest

from repro.analysis import Severity
from repro.analysis import lint as lint_mod
from repro.analysis.lint import equivalent_false, lint_program
from repro.logic import syntax as s
from repro.protocols import ALL_PROTOCOLS
from repro.rml.parser import parse_program


def _codes(diagnostics):
    return [d.code for d in diagnostics]


class TestCollectAll:
    MULTI_ERROR = """program broken
sort node
sort ghost
relation pending : node, node
relation unused_rel : node
variable n : node

axiom total: forall X:node. exists Y:node. pending(X, Y)

init {
    assume forall X:node. ~pending(X, X);
}

safety shadowed: forall X:node. forall X:node. ~pending(X, X)

action step {
    assume forall X:node. exists Y:node. pending(X, Y);
    update pending(A, B) := pending(A, B) | pending(A, n);
}
"""

    def test_one_pass_reports_every_violation(self):
        program = parse_program(self.MULTI_ERROR, check=False)
        diagnostics = lint_program(program, origin="broken.rml")
        codes = set(_codes(diagnostics))
        # >= 3 distinct violations from one pass:
        assert "RML003" in codes  # forall-exists assume
        assert "RML102" in codes  # unused_rel never used
        assert "RML104" in codes  # shadowed binder in the safety
        assert "RML101" in codes  # ghost sort unused
        assert "RML201" in codes  # the AE assume shows up as a QAG cycle
        assert len(diagnostics) >= 3

    def test_every_diagnostic_has_a_span(self):
        program = parse_program(self.MULTI_ERROR, check=False)
        diagnostics = lint_program(program, origin="broken.rml")
        for diagnostic in diagnostics:
            assert diagnostic.span is not None, diagnostic


class TestUnusedDeclarations:
    def test_unused_relation_points_at_declaration(self):
        source = """program toy
sort node
relation used : node
relation never : node
init { assume forall X:node. ~used(X); }
"""
        program = parse_program(source, check=False)
        (diagnostic,) = [
            d for d in lint_program(program) if d.code == "RML102"
        ]
        assert "never" in diagnostic.message
        assert diagnostic.span is not None
        assert diagnostic.span.line == 4  # the declaration line

    def test_unused_variable_flagged(self):
        source = """program toy
sort node
relation r : node
variable ghost : node
init { assume forall X:node. ~r(X); }
"""
        program = parse_program(source, check=False)
        assert "RML103" in _codes(lint_program(program))

    def test_havocked_variable_counts_as_used(self):
        source = """program toy
sort node
relation r : node
variable n : node
action step { havoc n; insert r(n); }
"""
        program = parse_program(source, check=False)
        assert "RML103" not in _codes(lint_program(program))


class TestShadowedBinders:
    def test_nested_same_name(self):
        source = """program toy
sort node
relation r : node, node
axiom shadow: forall X. r(X, X) & (forall X. r(X, X))
"""
        program = parse_program(source, check=False)
        assert "RML104" in _codes(lint_program(program))

    def test_distinct_names_clean(self):
        source = """program toy
sort node
relation r : node, node
axiom fine: forall X. forall Y. r(X, Y) -> r(Y, X)
init { assume forall X:node. ~r(X, X); }
"""
        program = parse_program(source, check=False)
        assert "RML104" not in _codes(lint_program(program))


class TestEquivalentFalse:
    def test_literal_false(self):
        assert equivalent_false(s.FALSE)

    def test_contradiction(self):
        from repro.logic import Sort

        x = s.Var("X", Sort("node"))
        # p & ~p with p an opaque quantified subformula
        p = s.forall((x,), s.eq(x, x))
        assert equivalent_false(s.and_(p, s.not_(p)))

    def test_satisfiable_not_flagged(self):
        assert not equivalent_false(s.TRUE)

    def test_assume_false_and_dead_branch(self):
        source = """program toy
sort node
relation r : node
variable n : node
action live { insert r(n); }
action dead { assume false; insert r(n); }
"""
        program = parse_program(source, check=False)
        codes = _codes(lint_program(program))
        assert "RML105" in codes
        assert "RML106" in codes

    def test_dead_branch_names_label(self):
        source = """program toy
sort node
relation r : node
variable n : node
action live { insert r(n); }
action dead { assume false; }
"""
        program = parse_program(source, check=False)
        (diagnostic,) = [d for d in lint_program(program) if d.code == "RML106"]
        assert "dead" in diagnostic.message


class TestNoopUpdates:
    def test_identity_rel_update_flagged(self):
        source = """program toy
sort node
relation r : node
init { update r(A) := r(A); }
"""
        program = parse_program(source, check=False)
        assert "RML107" in _codes(lint_program(program))

    def test_insert_sugar_not_flagged(self):
        # insert expands to r(X) := r(X) | X = t -- self-referencing but not
        # an identity no-op.
        source = """program toy
sort node
relation r : node
variable n : node
init { insert r(n); }
"""
        program = parse_program(source, check=False)
        assert "RML107" not in _codes(lint_program(program))


class TestBundledProtocolsClean:
    @pytest.mark.parametrize("name", sorted(ALL_PROTOCOLS))
    def test_protocol_lints_clean(self, name):
        bundle = ALL_PROTOCOLS[name].build()
        diagnostics = lint_program(bundle.program, origin=name)
        assert diagnostics == (), [d.message for d in diagnostics]


class TestWellFormednessFoldedIn:
    def test_rml002_with_span_from_lint(self):
        source = """program toy
sort node
relation r : node
init { assume r(X); }
"""
        program = parse_program(source, check=False)
        diagnostics = lint_program(program, origin="toy.rml")
        (closed,) = [d for d in diagnostics if d.code == "RML002"]
        assert closed.severity is Severity.ERROR
        assert closed.span is not None
