"""Shared fixtures: small vocabularies and the leader-election bundle.

The leader bundle is session-scoped -- building it is cheap but it is used
by dozens of tests, and keeping one instance makes declaration objects
(`RelDecl`/`FuncDecl`) identical across tests, which the equality-based
structure helpers rely on.
"""

from __future__ import annotations

import pytest

from repro.logic import FuncDecl, RelDecl, Sort, vocabulary
from repro.protocols import leader_election


@pytest.fixture(scope="session")
def leader_bundle():
    return leader_election.build()


@pytest.fixture(scope="session")
def ring_vocab():
    """The leader-election vocabulary, available without the program."""
    node, ident = Sort("node"), Sort("id")
    return vocabulary(
        sorts=[node, ident],
        relations=[
            RelDecl("le", (ident, ident)),
            RelDecl("btw", (node, node, node)),
            RelDecl("leader", (node,)),
            RelDecl("pnd", (ident, node)),
        ],
        functions=[FuncDecl("idn", (node,), ident)],
    )


@pytest.fixture(scope="session")
def tiny_vocab():
    """One sort, one unary and one binary relation, one constant."""
    elem = Sort("elem")
    return vocabulary(
        sorts=[elem],
        relations=[RelDecl("p", (elem,)), RelDecl("r", (elem, elem))],
        functions=[FuncDecl("c", (), elem)],
    )
