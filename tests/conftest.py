"""Shared fixtures: small vocabularies and the leader-election bundle.

The leader bundle is session-scoped -- building it is cheap but it is used
by dozens of tests, and keeping one instance makes declaration objects
(`RelDecl`/`FuncDecl`) identical across tests, which the equality-based
structure helpers rely on.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.logic import FuncDecl, RelDecl, Sort, vocabulary
from repro.protocols import leader_election

#: Hard per-test deadline (seconds); REPRO_TEST_TIMEOUT overrides.  The
#: fault-tolerance suite deliberately hangs worker processes, and a bug in
#: the kill path must fail the test, not wedge the whole run.  Generous by
#: default: single-CPU machines run some slow-tier protocol checks for
#: several minutes (CI tiers set tighter explicit values).
_TEST_DEADLINE = 900


@pytest.fixture(autouse=True)
def _test_deadline():
    """SIGALRM-based per-test timeout (no pytest-timeout dependency).

    ``fork`` clears pending alarms in children, so worker processes are
    unaffected.  Skipped on platforms without SIGALRM.
    """
    if not hasattr(signal, "SIGALRM"):
        yield
        return
    try:
        seconds = int(os.environ.get("REPRO_TEST_TIMEOUT", _TEST_DEADLINE))
    except ValueError:
        seconds = _TEST_DEADLINE

    def _expired(signum, frame):
        raise TimeoutError(f"test exceeded {seconds}s deadline")

    old_handler = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old_handler)


@pytest.fixture(scope="session")
def leader_bundle():
    return leader_election.build()


@pytest.fixture(scope="session")
def ring_vocab():
    """The leader-election vocabulary, available without the program."""
    node, ident = Sort("node"), Sort("id")
    return vocabulary(
        sorts=[node, ident],
        relations=[
            RelDecl("le", (ident, ident)),
            RelDecl("btw", (node, node, node)),
            RelDecl("leader", (node,)),
            RelDecl("pnd", (ident, node)),
        ],
        functions=[FuncDecl("idn", (node,), ident)],
    )


@pytest.fixture(scope="session")
def tiny_vocab():
    """One sort, one unary and one binary relation, one constant."""
    elem = Sort("elem")
    return vocabulary(
        sorts=[elem],
        relations=[RelDecl("p", (elem,)), RelDecl("r", (elem, elem))],
        functions=[FuncDecl("c", (), elem)],
    )
