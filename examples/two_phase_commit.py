#!/usr/bin/env python3
"""Verifying a new protocol end to end, written in RML concrete syntax.

The paper closes hoping Ivy becomes "a useful tool for system builders":
this example plays the system builder.  Two-phase commit for an unbounded
set of participants is written as an RML *text* model (the Figure 1 style
accepted by :func:`repro.rml.parser.parse_program`), debugged with bounded
verification, and proved safe interactively -- no Python model-building at
all.

Safety: agreement (no node commits while another aborts) and validity (a
commit implies every node voted yes).

Run:  python examples/two_phase_commit.py
"""

import sys
import time

from repro.core.bounded import find_error_trace
from repro.core.induction import Conjecture, check_inductive
from repro.core.policy import OraclePolicy
from repro.core.session import Session
from repro.logic import parse_formula
from repro.rml.parser import parse_program

SOURCE = """
program two_phase_commit

sort node

relation vote_yes : node
relation vote_no : node
relation go_commit
relation go_abort
relation decided_commit : node
relation decided_abort : node

variable n : node

init {
    assume forall N:node. ~vote_yes(N) & ~vote_no(N);
    assume ~go_commit & ~go_abort;
    assume forall N:node. ~decided_commit(N) & ~decided_abort(N);
}

safety agreement: forall N1, N2. ~(decided_commit(N1) & decided_abort(N2))
safety validity: forall N1, N2. decided_commit(N1) -> vote_yes(N2)

action vote_yes_action {
    havoc n;
    assume ~vote_no(n);
    insert vote_yes(n);
}

action vote_no_action {
    havoc n;
    assume ~vote_yes(n);
    assume ~go_commit;
    insert vote_no(n);
}

action decide_commit {
    assume forall N:node. vote_yes(N);
    assume ~go_abort;
    insert go_commit;
}

action decide_abort {
    havoc n;
    assume vote_no(n);
    assume ~go_commit;
    insert go_abort;
}

action node_commit {
    havoc n;
    assume go_commit;
    insert decided_commit(n);
}

action node_abort {
    havoc n;
    assume go_abort;
    insert decided_abort(n);
}
"""

INVARIANT = [
    ("C0", "forall N1, N2. ~(decided_commit(N1) & decided_abort(N2))"),
    ("C1", "forall N1, N2. decided_commit(N1) -> vote_yes(N2)"),
    ("C2", "~(go_commit & go_abort)"),
    ("C3", "forall N:node. decided_commit(N) -> go_commit"),
    ("C4", "forall N:node. decided_abort(N) -> go_abort"),
    ("C5", "forall N:node. go_commit -> vote_yes(N)"),
    ("C6", "forall N:node. ~(vote_yes(N) & vote_no(N))"),
]


def main() -> int:
    program = parse_program(SOURCE)
    print(f"parsed program {program.name!r}: "
          f"{len(program.vocab.relations)} relations, "
          f"{len(program.axioms)} axioms")

    print()
    print("== Bounded debugging (Section 4.1) ==")
    start = time.time()
    result = find_error_trace(program, 3)
    print(f"no assertion violation within 3 iterations: {result.holds} "
          f"({time.time() - start:.1f}s)")

    conjectures = [
        Conjecture(name, parse_formula(source, program.vocab))
        for name, source in INVARIANT
    ]

    print()
    print("== Interactive session (oracle over the drafted invariant) ==")
    session = Session(program, initial=conjectures[:2])
    start = time.time()
    outcome = session.run(OraclePolicy(conjectures))
    print(f"success: {outcome.success}, G = {outcome.cti_count} CTIs "
          f"({time.time() - start:.1f}s)")
    for line in outcome.transcript:
        print("  " + line)

    print()
    print("== Final check ==")
    result = check_inductive(program, list(outcome.conjectures))
    print(f"inductive: {result.holds}")
    return 0 if outcome.success and result.holds else 1


if __name__ == "__main__":
    sys.exit(main())
