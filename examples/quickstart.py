#!/usr/bin/env python3
"""Quickstart: verify leader election in a ring, the paper's running example.

Walks the full Ivy workflow of Section 2 on Figure 1's protocol:

1. debug the model with bounded verification (and reproduce the Figure 4
   bug by removing the ``unique_ids`` axiom);
2. run the interactive search for a universal inductive invariant, with a
   scripted "user" standing in for the paper's human: at each CTI it keeps
   the facts relevant to the violation and lets BMC + Auto Generalize do
   the rest (Sections 2.3 and 4.5);
3. check the final conjunction really is an inductive invariant proving
   that at most one leader is ever elected.

Run:  python examples/quickstart.py  [--fast]
"""

import argparse
import sys
import time

from repro.core.bounded import find_error_trace
from repro.core.induction import check_inductive
from repro.core.minimize import PositiveTuples, SortSize
from repro.core.policy import GeneralizingOraclePolicy, OraclePolicy
from repro.core.session import Session
from repro.logic import Sort
from repro.protocols import leader_election
from repro.viz.dot import structure_to_dot


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use the oracle policy (adds known conjectures) instead of "
        "replaying the generalization machinery",
    )
    args = parser.parse_args()

    bundle = leader_election.build()
    program = bundle.program

    banner("Step 1a: bounded debugging of a buggy model (Figure 4)")
    print("Removing the unique_ids axiom and checking up to 4 iterations...")
    buggy = program.without_axiom("unique_ids")
    start = time.time()
    result = find_error_trace(buggy, 4)
    print(f"  -> error found: {not result.holds} at depth {result.depth} "
          f"({time.time() - start:.1f}s)")
    assert result.trace is not None
    print()
    print(result.trace)

    banner("Step 1b: the corrected model is safe for 3 iterations")
    start = time.time()
    result = find_error_trace(program, 3)
    print(f"  -> no assertion violation within 3 iterations: {result.holds} "
          f"({time.time() - start:.1f}s)")

    banner("Step 2: interactive search for an inductive invariant (Fig. 5)")
    measures = [
        SortSize(Sort("node")),
        SortSize(Sort("id")),
        PositiveTuples(program.vocab.relation("pnd")),
        PositiveTuples(program.vocab.relation("leader")),
    ]
    session = Session(program, initial=bundle.safety, bmc_bound=3, measures=measures)
    if args.fast:
        policy = OraclePolicy(bundle.invariant)
    else:
        policy = GeneralizingOraclePolicy(bundle.invariant[1:], bound=3)
    start = time.time()
    outcome = session.run(policy)
    print(f"  -> success: {outcome.success} after {outcome.cti_count} CTIs "
          f"({time.time() - start:.1f}s)   [Figure 14 reports G = 3]")
    print()
    print("Session transcript:")
    for line in outcome.transcript:
        print("  " + line)
    print()
    print("Final conjecture set (compare with Figure 6):")
    for conjecture in outcome.conjectures:
        print(f"  {conjecture.name}: {conjecture.formula}")

    banner("Step 3: confirm inductiveness of the final invariant")
    result = check_inductive(program, list(outcome.conjectures))
    print(f"  -> inductive: {result.holds}")

    banner("Bonus: render the first CTI as Graphviz DOT")
    session2 = Session(program, initial=bundle.safety, measures=measures)
    cti = session2.find_cti().cti
    assert cti is not None
    print(structure_to_dot(cti.state, name="first_cti", hide={"btw"}))

    return 0 if outcome.success and result.holds else 1


if __name__ == "__main__":
    sys.exit(main())
