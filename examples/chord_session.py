#!/usr/bin/env python3
"""An interactive-style session on Chord ring maintenance (Section 5.1).

The paper's Chord proof starts from an automatically seeded conjecture set
and repairs it interactively.  This example replays our stable-base Chord
model end to end:

1. bounded debugging: the ring-order assertion cannot fail within 2 steps;
2. an oracle session measures how many CTIs separate the bare safety
   property from the full invariant;
3. the final invariant is checked inductive and printed.

It also demonstrates *weakening* (Figure 5's remove edge): seeding the
session with a plausible-but-wrong conjecture ("successor pointers are
never reflexive") forces the user to remove it when its CTI appears.

Run:  python examples/chord_session.py
"""

import sys
import time

from repro.core.bounded import find_error_trace
from repro.core.induction import Conjecture, check_inductive
from repro.core.policy import OraclePolicy
from repro.core.session import RemoveConjecture, Session, Stop
from repro.logic import parse_formula
from repro.protocols import chord


def main() -> int:
    bundle = chord.build()
    program = bundle.program

    print("== Bounded debugging ==")
    start = time.time()
    result = find_error_trace(program, 2)
    print(f"no ring-order violation within 2 steps: {result.holds} "
          f"({time.time() - start:.1f}s)")

    print()
    print("== Interactive search (oracle user) ==")
    session = Session(program, initial=bundle.safety)
    start = time.time()
    outcome = session.run(OraclePolicy(bundle.invariant))
    print(f"success: {outcome.success}, G = {outcome.cti_count} CTIs "
          f"({time.time() - start:.1f}s)")
    for line in outcome.transcript:
        print("  " + line)

    print()
    print("== Weakening: recovering from a wrong conjecture ==")
    wrong = Conjecture(
        "no_self_loop",
        parse_formula("forall X:node. ~s(X, X)", program.vocab),
    )

    class RemoveWrongOnce:
        """A user who notices the CTI implicates their guessed conjecture
        (a singleton base ring has s(b, b), so the guess fails initiation)
        and weakens."""

        def __init__(self):
            self.removed = False

        def decide(self, session_, cti):
            if not self.removed and cti.obligation.target == "no_self_loop":
                self.removed = True
                return RemoveConjecture("no_self_loop")
            return Stop("unexpected CTI")

    try:
        weak_session = Session(program, initial=(*bundle.invariant, wrong))
        weak_outcome = weak_session.run(RemoveWrongOnce())
        print(f"recovered by weakening: {weak_outcome.success} "
              f"(CTIs: {weak_outcome.cti_count})")
    except Exception as error:  # initiation may already reject it
        print(f"conjecture rejected outright: {error}")

    print()
    print("== Final invariant ==")
    result = check_inductive(program, list(bundle.invariant))
    print(f"inductive: {result.holds}")
    for conjecture in bundle.invariant:
        print(f"  {conjecture.name}: {conjecture.formula}")
    return 0 if outcome.success and result.holds else 1


if __name__ == "__main__":
    sys.exit(main())
