#!/usr/bin/env python3
"""Fully automatic invariant inference: templates + Houdini (Section 5.1).

For Chord the paper "described a class of formulas using a template, and
used abstract interpretation to construct the strongest inductive invariant
in this class".  This example dogfoods that strategy on the Verdi lock
server: enumerate every universal conjecture with at most three literals
over two client variables, run Houdini to keep the strongest inductive
subset, and check that it implies mutual exclusion -- a fully automatic
proof, no interaction needed.

It then contrasts with the interactive route: an oracle session replaying
the 9-conjecture hand-written invariant, measuring the G column of
Figure 14.

Run:  python examples/houdini_lock_server.py
"""

import sys
import time

from repro.core.absint import enumerate_candidates
from repro.core.houdini import houdini, proves
from repro.core.policy import OraclePolicy
from repro.core.session import Session
from repro.logic import Sort, Var
from repro.protocols import lock_server


def main() -> int:
    bundle = lock_server.build()
    program = bundle.program
    client = Sort("client")

    print("== Automatic: template enumeration + Houdini ==")
    variables = [Var("C1", client), Var("C2", client)]
    pool = list(
        enumerate_candidates(
            program.vocab,
            variables,
            max_literals=3,
            include_equality=True,
            max_candidates=4000,
        )
    )
    print(f"template pool: {len(pool)} candidate conjectures")
    start = time.time()
    result = houdini(program, pool)
    elapsed = time.time() - start
    print(f"houdini: {len(result.invariant)} survive "
          f"({len(result.dropped_initiation)} failed initiation, "
          f"{len(result.dropped_consecution)} failed consecution) "
          f"in {result.rounds} rounds, {elapsed:.1f}s")
    implied = proves(program, result.invariant, bundle.safety[0])
    print(f"mutual exclusion implied by the inferred invariant: {implied}")

    print()
    print("== Interactive: oracle session with the published invariant ==")
    session = Session(program, initial=bundle.safety)
    start = time.time()
    outcome = session.run(OraclePolicy(bundle.invariant))
    print(f"success: {outcome.success}, G = {outcome.cti_count} CTIs "
          f"({time.time() - start:.1f}s)   [Figure 14 reports G = 8]")
    for line in outcome.transcript:
        print("  " + line)

    print()
    print("Conjectures (the token-location exclusion lattice):")
    for conjecture in outcome.conjectures:
        print(f"  {conjecture.name}: {conjecture.formula}")
    return 0 if implied and outcome.success else 1


if __name__ == "__main__":
    sys.exit(main())
