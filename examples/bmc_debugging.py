#!/usr/bin/env python3
"""Symbolic bounded verification as a model-debugging tool (Section 4.1).

The paper's workflow starts by *debugging* the RML model: check that no
assertion can fail within k loop iterations, and that interesting
properties are k-invariant -- with no bound on the size of the
configuration, unlike finite-scope tools such as Alloy.

This example drives bounded verification over two protocols:

* the distributed lock protocol admits no assertion failure up to the
  bound, and k-invariance separates its true invariants from properties
  that only survive a few steps;
* breaking the lock *server* (granting without checking the server is
  free) produces a concrete counterexample trace ending with two clients
  holding the lock -- the Figure 3 debugging loop on a seeded bug.

Run:  python examples/bmc_debugging.py
"""

import sys
import time

from repro.core.bounded import check_k_invariance, find_error_trace
from repro.logic import parse_formula
from repro.protocols import distributed_lock, rml_sources
from repro.rml.parser import parse_program


def broken_lock_server():
    """A lock server that grants without checking the server is free."""
    source = rml_sources.LOCK_SERVER.replace(
        "    assume server_free;\n    remove lock_msg(c);",
        "    remove lock_msg(c);",
    )
    assert source != rml_sources.LOCK_SERVER
    return parse_program(source)


def main() -> int:
    bundle = distributed_lock.build()
    program = bundle.program
    vocab = program.vocab

    print("== Correct distributed lock: no assertion failure within 2 steps ==")
    start = time.time()
    result = find_error_trace(program, 2)
    print(f"safe: {result.holds}  ({time.time() - start:.1f}s)")

    print()
    print("== Broken lock server: granting without checking availability ==")
    broken = broken_lock_server()
    start = time.time()
    result = find_error_trace(broken, 6)
    print(f"error found: {not result.holds} at depth {result.depth} "
          f"({time.time() - start:.1f}s)")
    if result.trace is not None:
        print()
        print(result.trace)
        result.trace.validate()
        print("(trace validated against the concrete interpreter)")

    print()
    print("== k-invariance distinguishes invariants from accidents ==")
    no_locked = parse_formula("forall E:epoch, N:node. ~locked(E, N)", vocab)
    for k in (0, 1, 2):
        holds = check_k_invariance(program, no_locked, k).holds
        print(f"'no locked messages yet': k={k}: {holds}"
              f"{'' if holds else '   <- only an accident of small k'}")
    # A real invariant stays k-invariant as k grows.
    conjecture = bundle.invariant[2]  # transfer epochs are unique
    for k in (1, 2, 3):
        holds = check_k_invariance(program, conjecture.formula, k).holds
        print(f"{conjecture.name} k={k}: {holds}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
