"""Setup shim for editable installs on environments without the wheel package."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Ivy: Safety Verification by Interactive "
        "Generalization' (PLDI 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
